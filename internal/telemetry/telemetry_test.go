package telemetry

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"caps/internal/obs"
)

// TestPrometheusConformance is the exposition round-trip gate: a registry
// with hostile label values and histograms is rendered by
// obs.WritePrometheus and read back through the strict text parser. It
// checks label-value escaping (\n, ", \\), the _bucket/_sum/_count family
// naming, and that the +Inf bucket equals the sample count.
func TestPrometheusConformance(t *testing.T) {
	hostile := "a\"quote\\back\nline"
	r := obs.NewRegistry()
	c := r.Counter("req_total", obs.Label{Key: "path", Value: hostile})
	c.Add(41)
	r.Gauge("depth_now").Set(17)
	h := r.Histogram("lat_cycles", 100, 3, obs.Label{Key: "sm", Value: "0"})
	for _, v := range []int64{10, 150, 99999} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := obs.WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `path="a\"quote\\back\nline"`) {
		t.Fatalf("label value not escaped per exposition rules:\n%s", text)
	}

	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("our own exposition does not parse: %v\n%s", err, text)
	}
	if got := m.Types["req_total"]; got != "counter" {
		t.Errorf("req_total TYPE = %q, want counter", got)
	}
	if got := m.Types["depth_now"]; got != "gauge" {
		t.Errorf("depth_now TYPE = %q, want gauge", got)
	}
	if got := m.Types["lat_cycles"]; got != "histogram" {
		t.Errorf("lat_cycles TYPE = %q, want histogram", got)
	}

	reqs := m.Find("req_total")
	if len(reqs) != 1 || reqs[0].Value != 41 {
		t.Fatalf("req_total parsed as %+v", reqs)
	}
	if got := reqs[0].Label("path"); got != hostile {
		t.Errorf("hostile label did not round-trip: got %q want %q", got, hostile)
	}

	buckets := m.Find("lat_cycles_bucket")
	wantLE := map[string]float64{"100": 1, "200": 2, "300": 2, "+Inf": 3}
	if len(buckets) != len(wantLE) {
		t.Fatalf("got %d buckets, want %d: %+v", len(buckets), len(wantLE), buckets)
	}
	var inf float64
	for _, s := range buckets {
		le := s.Label("le")
		if want, ok := wantLE[le]; !ok || s.Value != want {
			t.Errorf("bucket le=%q value %v, want %v", le, s.Value, want)
		}
		if s.Label("sm") != "0" {
			t.Errorf("bucket lost its sm label: %+v", s)
		}
		if le == "+Inf" {
			inf = s.Value
		}
	}
	counts := m.Find("lat_cycles_count")
	if len(counts) != 1 {
		t.Fatalf("lat_cycles_count: %+v", counts)
	}
	if inf != counts[0].Value {
		t.Errorf("+Inf bucket (%v) must equal _count (%v)", inf, counts[0].Value)
	}
	sums := m.Find("lat_cycles_sum")
	if len(sums) != 1 || sums[0].Value != 10+150+99999 {
		t.Errorf("lat_cycles_sum: %+v", sums)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`1leading_digit 3`,
		`name{l="unterminated} 3`,
		`name{l="bad\q"} 3`,
		`name{l="v"} notanumber`,
		`name{l="v"}`,
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics accepted %q", bad)
		}
	}
	// +Inf and timestamps are part of the grammar.
	ok := "x_bucket{le=\"+Inf\"} +Inf 1700000000\n"
	if _, err := ParseMetrics(strings.NewReader(ok)); err != nil {
		t.Errorf("ParseMetrics rejected %q: %v", ok, err)
	}
}

func testMeta(id string) RunMeta {
	return RunMeta{ID: id, Bench: "MM", Prefetcher: "caps", Scheduler: "pas", MaxInsts: 1000}
}

func sampleSet(name string, v int64) []obs.Sample {
	return []obs.Sample{{Name: name, Kind: obs.SampleCounter, Value: v}}
}

func TestHubMergeAndReplay(t *testing.T) {
	h := NewHub()
	h.Publish(testMeta("a"), 100, 50, sampleSet("x_total", 5))
	h.Publish(testMeta("b"), 200, 100, sampleSet("x_total", 7))

	merged := h.MergedSamples()
	var xTotal, runCycles int64
	runSeries := 0
	for _, s := range merged {
		switch s.Name {
		case "x_total":
			xTotal = s.Value
		case "caps_run_cycles":
			runSeries++
			runCycles += s.Value
		}
	}
	if xTotal != 12 {
		t.Errorf("x_total aggregated to %d, want 12", xTotal)
	}
	if runSeries != 2 || runCycles != 300 {
		t.Errorf("caps_run_cycles: %d series summing to %d, want 2 / 300", runSeries, runCycles)
	}

	// A late subscriber must get both runs replayed.
	_, replay, cancel := h.Subscribe()
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("replay has %d events, want 2", len(replay))
	}
	if !strings.Contains(replay[0], `"run":"a"`) || !strings.Contains(replay[1], `"run":"b"`) {
		t.Errorf("replay order/content wrong: %q", replay)
	}

	// Live updates reach the subscriber; done flips the event kind.
	ch, _, cancel2 := h.Subscribe()
	defer cancel2()
	h.RunDone(testMeta("a"), 400, 1000, 2.5, nil)
	select {
	case msg := <-ch:
		if !strings.HasPrefix(msg, "event: done\n") || !strings.Contains(msg, `"eta_cycles":0`) {
			t.Errorf("done event malformed: %q", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestETA(t *testing.T) {
	if got := etaCycles(1000, 200, 100, false); got != 1800 {
		t.Errorf("eta = %d, want 1800", got) // 900 insts left at 0.5 IPC
	}
	if got := etaCycles(0, 200, 100, false); got != -1 {
		t.Errorf("uncapped eta = %d, want -1", got)
	}
	if got := etaCycles(1000, 0, 0, false); got != -1 {
		t.Errorf("cold-start eta = %d, want -1", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := NewServer("127.0.0.1:0")
	srv.Hub().Publish(testMeta("MM-caps-pas"), 8192, 4000, sampleSet("cta_launch_total", 3))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if len(m.Find("caps_run_cycles")) != 1 || len(m.Find("cta_launch_total")) != 1 {
		t.Errorf("/metrics missing expected series: %+v", m.Samples)
	}

	// SSE: the replayed event must arrive on connect.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("/events content type %q", ct)
	}
	sc := bufio.NewScanner(eresp.Body)
	var ev, data string
	for sc.Scan() && data == "" {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			ev = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if ev != "progress" || !strings.Contains(data, `"run":"MM-caps-pas"`) {
		t.Errorf("SSE replay wrong: event=%q data=%q", ev, data)
	}

	sresp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	if _, err := fmt.Fprint(&body, readAll(t, sresp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "MM-caps-pas") {
		t.Errorf("status page missing run: %q", body.String())
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRunProgressConsumer(t *testing.T) {
	h := NewHub()
	reg := obs.NewRegistry()
	reg.Counter("y_total").Add(9)
	p := NewRunProgress(h, testMeta("r1"), reg)
	// Non-progress events are ignored.
	p.Consume(obs.Event{Kind: obs.EvCTALaunch, Cycle: 5})
	if len(h.Runs()) != 0 {
		t.Fatal("consumer published on a non-progress event")
	}
	p.Consume(obs.Event{Kind: obs.EvProgress, Cycle: 8192, Val: 4096})
	runs := h.Runs()
	if len(runs) != 1 || runs[0].Cycles != 8192 || runs[0].Instructions != 4096 || runs[0].IPC != 0.5 {
		t.Fatalf("progress not published: %+v", runs)
	}
	found := false
	for _, s := range h.MergedSamples() {
		if s.Name == "y_total" && s.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Error("registry snapshot not published alongside progress")
	}
}
