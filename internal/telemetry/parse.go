package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one series value read back from a Prometheus text
// exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s ParsedSample) Label(key string) string { return s.Labels[key] }

// ParsedMetrics is a decoded exposition document: the declared family types
// and every sample line.
type ParsedMetrics struct {
	Types   map[string]string // family name → counter|gauge|histogram|...
	Samples []ParsedSample
}

// Find returns the samples of one metric name.
func (m *ParsedMetrics) Find(name string) []ParsedSample {
	var out []ParsedSample
	for _, s := range m.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// ParseMetrics is a minimal, strict parser for the Prometheus text
// exposition format (version 0.0.4): enough to validate the simulator's
// own /metrics output in conformance tests and the serve-smoke gate —
// metric-name syntax, label escaping round-trip (\\, \", \n), float values
// including +Inf, and # TYPE declarations. Anything it cannot understand is
// an error, not a skip: the point is to fail CI on malformed exposition.
func ParseMetrics(r io.Reader) (*ParsedMetrics, error) {
	out := &ParsedMetrics{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid family name %q", lineNo, fields[2])
				}
				if _, dup := out.Types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, fields[2])
				}
				out.Types[fields[2]] = fields[3]
			}
			continue // HELP and other comments
		}
		s, err := parseSeries(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSeries decodes `name{k="v",...} value [timestamp]`.
func parseSeries(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: make(map[string]string)}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after %q, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes the body after '{' into dst, returning the remainder
// after the closing '}'.
func parseLabels(in string, dst map[string]string) (string, error) {
	for {
		in = strings.TrimLeft(in, " \t")
		if strings.HasPrefix(in, "}") {
			return in[1:], nil
		}
		j := 0
		for j < len(in) && isNameChar(in[j], j == 0) {
			j++
		}
		if j == 0 {
			return "", fmt.Errorf("missing label name at %q", in)
		}
		key := in[:j]
		in = in[j:]
		if !strings.HasPrefix(in, `="`) {
			return "", fmt.Errorf("label %q: expected =\"", key)
		}
		in = in[2:]
		var val strings.Builder
		for {
			if len(in) == 0 {
				return "", fmt.Errorf("label %q: unterminated value", key)
			}
			c := in[0]
			if c == '"' {
				in = in[1:]
				break
			}
			if c == '\\' {
				if len(in) < 2 {
					return "", fmt.Errorf("label %q: dangling escape", key)
				}
				switch in[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %q: unknown escape \\%c", key, in[1])
				}
				in = in[2:]
				continue
			}
			val.WriteByte(c)
			in = in[1:]
		}
		if _, dup := dst[key]; dup {
			return "", fmt.Errorf("duplicate label %q", key)
		}
		dst[key] = val.String()
		in = strings.TrimLeft(in, " \t")
		if strings.HasPrefix(in, ",") {
			in = in[1:]
			continue
		}
		if strings.HasPrefix(in, "}") {
			return in[1:], nil
		}
		return "", fmt.Errorf("expected , or } after label %q", key)
	}
}

// isNameChar follows the metric/label name grammar [a-zA-Z_:][a-zA-Z0-9_:]*
// (label names disallow ':' in Prometheus itself, but our writer never
// emits them, so one grammar serves both).
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

// validMetricName checks the full-name grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return true
}
