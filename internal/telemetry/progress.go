package telemetry

import "caps/internal/obs"

// RunProgress is the periodic obs.Consumer feeding the hub: it ignores
// every event except the simulator's liveness beat (obs.EvProgress, one per
// ~8K cycles), on which it snapshots the run's registry — safely, since
// Consume executes on the simulation goroutine that owns the registry — and
// publishes position plus metrics to the hub. Attach one per run before the
// first simulated cycle.
type RunProgress struct {
	hub  *Hub
	meta RunMeta
	reg  *obs.Registry
}

// NewRunProgress builds the consumer for one run. reg may be nil (progress
// only, no metric snapshots).
func NewRunProgress(hub *Hub, meta RunMeta, reg *obs.Registry) *RunProgress {
	return &RunProgress{hub: hub, meta: meta, reg: reg}
}

var _ obs.Consumer = (*RunProgress)(nil)

// Consume implements obs.Consumer.
func (p *RunProgress) Consume(e obs.Event) {
	if e.Kind != obs.EvProgress || p.hub == nil {
		return
	}
	var samples []obs.Sample
	if p.reg != nil {
		samples = p.reg.Snapshot()
	}
	p.hub.Publish(p.meta, e.Cycle, e.Val, samples)
}
