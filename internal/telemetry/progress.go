package telemetry

import (
	"caps/internal/hostprof"
	"caps/internal/obs"
)

// RunProgress is the periodic obs.Consumer feeding the hub: it ignores
// every event except the simulator's liveness beat (obs.EvProgress, one per
// ~8K cycles), on which it snapshots the run's registry — safely, since
// Consume executes on the simulation goroutine that owns the registry — and
// publishes position plus metrics to the hub. Attach one per run before the
// first simulated cycle.
//
// When the run carries a host profiler (sim.WithHostProf), attach it with
// AttachHostProf: each beat then also publishes live host-time stats (wall
// clock, cycles/sec, worker utilization, skip efficiency). Reading the
// profiler here is safe for the same reason the registry snapshot is — the
// beat executes between steps on the simulation goroutine, after the
// barrier has ordered every worker write. Without the profiler reference
// the consumer still forwards the beat's EvHostTime wall-clock stamp.
type RunProgress struct {
	hub    *Hub
	meta   RunMeta
	reg    *obs.Registry
	hp     *hostprof.Profiler
	wallNS int64
}

// NewRunProgress builds the consumer for one run. reg may be nil (progress
// only, no metric snapshots).
func NewRunProgress(hub *Hub, meta RunMeta, reg *obs.Registry) *RunProgress {
	return &RunProgress{hub: hub, meta: meta, reg: reg}
}

// AttachHostProf enables live host-time stats on every beat. Pass the
// same profiler handed to sim.WithHostProf.
func (p *RunProgress) AttachHostProf(hp *hostprof.Profiler) { p.hp = hp }

var _ obs.Consumer = (*RunProgress)(nil)

// Consume implements obs.Consumer.
func (p *RunProgress) Consume(e obs.Event) {
	switch e.Kind {
	case obs.EvHostTime:
		p.wallNS = e.Val
		return
	case obs.EvProgress:
	default:
		return
	}
	if p.hub == nil {
		return
	}
	var samples []obs.Sample
	if p.reg != nil {
		samples = p.reg.Snapshot()
	}
	var live *hostprof.Live
	if p.hp != nil {
		l := p.hp.LiveStats(e.Cycle)
		live = &l
	} else if p.wallNS > 0 {
		l := hostprof.Live{WallNS: p.wallNS}
		if e.Cycle > 0 {
			l.CyclesPerSec = int64(float64(e.Cycle) / (float64(p.wallNS) / 1e9))
		}
		live = &l
	}
	p.hub.PublishLive(p.meta, e.Cycle, e.Val, live, samples)
}
