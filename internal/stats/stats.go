// Package stats collects the counters the CAPS paper reports: IPC,
// prefetch coverage/accuracy, bandwidth overhead, timeliness and stall
// breakdowns. One Sim value is shared by all components of a single GPU
// run; the simulator is single-goroutine so no locking is needed.
package stats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Sim aggregates every counter for one simulation run. One instance is
// shared by every SM and memory partition of the GPU, which makes each
// counter bump a cross-SM write the parallel core must serialize.
//
//caps:shared run-stats
type Sim struct {
	// Progress.
	Cycles       int64
	Instructions int64 // warp instructions issued
	WarpsDone    int64
	CTAsDone     int64

	// Issue behaviour.
	IssueCycles int64 // cycles where at least one instruction issued
	StallCycles int64 // cycles where no warp was schedulable
	MemStalls   int64 // cycles where the LSU rejected a replay (reservation fail)

	// L1 demand traffic.
	DemandAccesses   int64 // coalesced demand accesses presented to L1
	DemandHits       int64
	DemandMisses     int64 // misses that allocated a new MSHR (go to memory)
	DemandMerged     int64 // misses merged into an in-flight MSHR
	ReservationFails int64

	// Prefetch traffic.
	PrefIssued  int64 // prefetches admitted into L1 (post-dedup)
	PrefDropped int64 // generated but dropped (duplicate, present, throttled, full)
	// Drop breakdown (components of PrefDropped).
	PrefDropQueueFull int64 // prefetch queue overflow
	PrefDropDup       int64 // same line already queued
	PrefDropStale     int64 // candidate exceeded its TTL before admission
	PrefDropCTAGone   int64 // target warp's CTA already departed
	PrefDropPresent   int64 // line already resident in L1
	PrefDropInFlight  int64 // line already being fetched
	PrefDropSetFull   int64 // target set already full of unconsumed prefetches
	PrefToMemory      int64 // prefetch misses sent to the memory system
	PrefUseful        int64 // prefetched lines consumed by a demand access
	PrefLate          int64 // demand merged into an in-flight prefetch MSHR
	PrefEarlyEvict    int64 // prefetched lines evicted before any use
	PrefUnusedAtEnd   int64 // prefetched lines never touched, still resident at end
	PrefVerifyOK      int64 // CAP address verification matches
	PrefVerifyBad     int64 // CAP address verification mismatches

	// Timeliness: sum/count of (demand cycle - prefetch issue cycle) over
	// useful prefetches.
	PrefDistanceSum   int64
	PrefDistanceCount int64

	// Memory-system traffic.
	CoreToMemRequests int64 // all fetch requests leaving the SMs (Fig. 13a numerator)
	L2Accesses        int64
	L2Hits            int64
	DRAMReads         int64 // line reads serviced by DRAM (Fig. 13b numerator)
	DRAMRowHits       int64
	DRAMRowMisses     int64
	StoresIssued      int64

	// Latency observation: sum/count of demand round-trip cycles.
	DemandLatencySum   int64
	DemandLatencyCount int64

	// Scheduler behaviour.
	WakeupPromotions int64 // PAS eager wake-ups performed

	// Energy events (consumed by internal/energy).
	ALUOps          int64
	L1Accesses      int64 // demand + prefetch probes
	SharedMemOps    int64
	PrefTableLookup int64 // CAPS PerCTA/DIST accesses
}

// UncountDemandReplay reverses the demand-access accounting for an access
// the L1 refused (reservation fail): the LSU replays it next cycle, so
// leaving it counted would double-bill the replayed access. Corrections
// live here as accessors so that counters stay monotonic at every call
// site outside this package (simcheck's statlint pass enforces that).
//
//caps:shared-sync stats-reduce
func (s *Sim) UncountDemandReplay() {
	s.DemandAccesses--
	s.L1Accesses--
}

// UncountL2Replay reverses the L2 access counter for a request the slice
// could not accept (reservation fail); the partition retries it next cycle.
func (s *Sim) UncountL2Replay() {
	s.L2Accesses--
}

// Hash64 folds every counter into an FNV-1a hash. The determinism harness
// compares hashes across repeated runs; reflection keeps the hash in sync
// as counters are added, and struct field order is fixed by the source, so
// the fold order is deterministic.
func (s *Sim) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := reflect.ValueOf(*s)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			continue
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Int()))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// AddFrom drains src into s: every int64 counter is added to s's matching
// field and zeroed in src, so repeated merges never double count. The GPU
// gives each SM (and its prefetcher) a private shard and drains them into
// the run total on Stats() — addition is associative and commutative, so
// the totals are bit-identical to the single shared struct the shards
// replaced, at any worker count. Reflection keeps the merge in sync with
// the field set exactly as Hash64 does.
func (s *Sim) AddFrom(src *Sim) {
	dv := reflect.ValueOf(s).Elem()
	sv := reflect.ValueOf(src).Elem()
	for i := 0; i < dv.NumField(); i++ {
		f := dv.Field(i)
		if f.Kind() != reflect.Int64 {
			continue
		}
		sf := sv.Field(i)
		if v := sf.Int(); v != 0 {
			f.SetInt(f.Int() + v)
			sf.SetInt(0)
		}
	}
}

// IPC returns instructions per cycle over the whole run.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Coverage is the paper's Fig. 12a metric: issued prefetch requests over
// total demand fetch requests (demand misses that went to memory).
func (s *Sim) Coverage() float64 {
	den := s.DemandMisses + s.DemandMerged
	if den == 0 {
		return 0
	}
	return float64(s.PrefIssued) / float64(den)
}

// Accuracy is the paper's Fig. 12b metric: prefetches actually consumed by a
// demand request over prefetches issued.
func (s *Sim) Accuracy() float64 {
	if s.PrefIssued == 0 {
		return 0
	}
	return float64(s.PrefUseful+s.PrefLate) / float64(s.PrefIssued)
}

// EarlyPrefetchRatio is Fig. 14a: prefetched lines evicted before use over
// prefetches issued.
func (s *Sim) EarlyPrefetchRatio() float64 {
	if s.PrefIssued == 0 {
		return 0
	}
	return float64(s.PrefEarlyEvict) / float64(s.PrefIssued)
}

// MeanPrefetchDistance is Fig. 14b: average cycles between a useful
// prefetch's issue and its demand access.
func (s *Sim) MeanPrefetchDistance() float64 {
	if s.PrefDistanceCount == 0 {
		return 0
	}
	return float64(s.PrefDistanceSum) / float64(s.PrefDistanceCount)
}

// MeanDemandLatency is the average demand round trip in cycles.
func (s *Sim) MeanDemandLatency() float64 {
	if s.DemandLatencyCount == 0 {
		return 0
	}
	return float64(s.DemandLatencySum) / float64(s.DemandLatencyCount)
}

// L1MissRate is demand misses (including merges) over demand accesses.
func (s *Sim) L1MissRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandMisses+s.DemandMerged) / float64(s.DemandAccesses)
}

// String renders a compact human-readable report.
func (s *Sim) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d insts=%d ipc=%.4f\n", s.Cycles, s.Instructions, s.IPC())
	fmt.Fprintf(&b, "L1: acc=%d hit=%d miss=%d merged=%d resfail=%d missrate=%.3f\n",
		s.DemandAccesses, s.DemandHits, s.DemandMisses, s.DemandMerged, s.ReservationFails, s.L1MissRate())
	fmt.Fprintf(&b, "prefetch: issued=%d dropped=%d useful=%d late=%d earlyevict=%d cov=%.3f acc=%.3f dist=%.1f\n",
		s.PrefIssued, s.PrefDropped, s.PrefUseful, s.PrefLate, s.PrefEarlyEvict,
		s.Coverage(), s.Accuracy(), s.MeanPrefetchDistance())
	fmt.Fprintf(&b, "prefdrop: qfull=%d dup=%d stale=%d ctagone=%d present=%d inflight=%d setfull=%d\n",
		s.PrefDropQueueFull, s.PrefDropDup, s.PrefDropStale, s.PrefDropCTAGone,
		s.PrefDropPresent, s.PrefDropInFlight, s.PrefDropSetFull)
	fmt.Fprintf(&b, "memory: core2mem=%d l2acc=%d l2hit=%d dramRd=%d rowhit=%d lat=%.1f\n",
		s.CoreToMemRequests, s.L2Accesses, s.L2Hits, s.DRAMReads, s.DRAMRowHits, s.MeanDemandLatency())
	fmt.Fprintf(&b, "sched: stall=%d memstall=%d wakeups=%d ctas=%d\n",
		s.StallCycles, s.MemStalls, s.WakeupPromotions, s.CTAsDone)
	return b.String()
}

// Histogram is a fixed-bucket integer histogram used for distance and
// latency distributions.
type Histogram struct {
	BucketWidth int64
	Counts      []int64
	Overflow    int64
	total       int64
	sum         int64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(bucketWidth int64, n int) *Histogram {
	if bucketWidth <= 0 {
		panic("stats: bucket width must be positive")
	}
	if n <= 0 {
		panic("stats: bucket count must be positive")
	}
	return &Histogram{BucketWidth: bucketWidth, Counts: make([]int64, n)}
}

// Add records one sample. Negative samples clamp to bucket zero.
func (h *Histogram) Add(v int64) {
	h.total++
	h.sum += v
	if v < 0 {
		v = 0
	}
	i := v / h.BucketWidth
	if i >= int64(len(h.Counts)) {
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the arithmetic mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns an approximate percentile (0 < p <= 100) using bucket
// upper bounds. Overflowed samples report as +inf-like max bound.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(p / 100 * float64(h.total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return int64(i+1) * h.BucketWidth
		}
	}
	return int64(len(h.Counts)) * h.BucketWidth
}

// Table is a tiny helper to format aligned result tables for the
// experiment drivers.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hdr := range t.Header {
		widths[i] = len(hdr)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped (matching how the paper averages normalized
// IPC over benchmarks that completed).
func GeoMean(vs []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vs {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Mean returns the arithmetic mean (the paper's figures use arithmetic
// means across benchmarks).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Median returns the median of the values.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
