package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	s := &Sim{Instructions: 500, Cycles: 250}
	if got := s.IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2.0", got)
	}
	if got := (&Sim{}).IPC(); got != 0 {
		t.Errorf("empty IPC = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	s := &Sim{PrefIssued: 20, DemandMisses: 80, DemandMerged: 20}
	if got := s.Coverage(); got != 0.2 {
		t.Errorf("Coverage = %v, want 0.2", got)
	}
	if got := (&Sim{PrefIssued: 5}).Coverage(); got != 0 {
		t.Errorf("coverage with no demand = %v, want 0", got)
	}
}

func TestAccuracy(t *testing.T) {
	s := &Sim{PrefIssued: 100, PrefUseful: 90, PrefLate: 7}
	if got := s.Accuracy(); got != 0.97 {
		t.Errorf("Accuracy = %v, want 0.97", got)
	}
	if got := (&Sim{}).Accuracy(); got != 0 {
		t.Errorf("accuracy with no prefetches = %v, want 0", got)
	}
}

func TestEarlyPrefetchRatio(t *testing.T) {
	s := &Sim{PrefIssued: 200, PrefEarlyEvict: 2}
	if got := s.EarlyPrefetchRatio(); got != 0.01 {
		t.Errorf("EarlyPrefetchRatio = %v, want 0.01", got)
	}
}

func TestMeanPrefetchDistance(t *testing.T) {
	s := &Sim{PrefDistanceSum: 300, PrefDistanceCount: 2}
	if got := s.MeanPrefetchDistance(); got != 150 {
		t.Errorf("MeanPrefetchDistance = %v, want 150", got)
	}
	if got := (&Sim{}).MeanPrefetchDistance(); got != 0 {
		t.Errorf("distance with no samples = %v, want 0", got)
	}
}

func TestL1MissRate(t *testing.T) {
	s := &Sim{DemandAccesses: 100, DemandMisses: 30, DemandMerged: 20}
	if got := s.L1MissRate(); got != 0.5 {
		t.Errorf("L1MissRate = %v, want 0.5", got)
	}
}

func TestStringContainsKeyMetrics(t *testing.T) {
	s := &Sim{Cycles: 10, Instructions: 20, PrefIssued: 3}
	out := s.String()
	for _, want := range []string{"cycles=10", "insts=20", "issued=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []int64{0, 5, 15, 49, 100} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("bucket counts wrong: %v", h.Counts)
	}
	if h.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow)
	}
	if got := h.Mean(); got != 33.8 {
		t.Errorf("Mean = %v, want 33.8", got)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(10, 3)
	h.Add(-5)
	if h.Counts[0] != 1 {
		t.Errorf("negative sample should land in bucket 0: %v", h.Counts)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid histogram args")
				}
			}()
			f()
		}()
	}
}

func TestHistogramMeanMatchesSamples(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(7, 4)
		var sum int64
		for _, v := range raw {
			h.Add(int64(v))
			sum += int64(v)
		}
		want := float64(sum) / float64(len(raw))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(5, 60)
		for _, v := range raw {
			h.Add(int64(v))
		}
		return h.Percentile(25) <= h.Percentile(50) &&
			h.Percentile(50) <= h.Percentile(90) &&
			h.Percentile(90) <= h.Percentile(100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "alpha") || !strings.Contains(lines[1], "1") {
		t.Errorf("row misformatted: %q", lines[1])
	}
	csv := tb.CSV()
	if csv != "name,value\nalpha,1\nb,22\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestMeanMedianGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean of non-positive = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a)+1, float64(b)+1
		g := GeoMean([]float64{x, y})
		lo, hi := math.Min(x, y), math.Max(x, y)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
