package energy

import (
	"math"
	"testing"

	"caps/internal/config"
	"caps/internal/stats"
)

func TestEstimateComponents(t *testing.T) {
	cfg := config.Default()
	p := DefaultParams()
	st := &stats.Sim{
		Cycles:            int64(cfg.CoreClockMHz) * 1e6, // exactly one second
		ALUOps:            1e9,
		SharedMemOps:      1e6,
		L1Accesses:        2e6,
		L2Accesses:        1e6,
		CoreToMemRequests: 1e6,
		DRAMReads:         5e5,
		StoresIssued:      5e5,
		PrefTableLookup:   1e6,
	}
	b := Estimate(p, cfg, st, true)
	if math.Abs(b.Static-p.StaticWatts) > 1e-9 {
		t.Errorf("static energy over one second = %v J, want %v", b.Static, p.StaticWatts)
	}
	if math.Abs(b.ALU-1e9*p.ALUOpPJ*1e-12) > 1e-9 {
		t.Errorf("ALU energy = %v", b.ALU)
	}
	wantDRAM := 1e6 * p.DRAMAccessPJ * 1e-12
	if math.Abs(b.DRAM-wantDRAM) > 1e-9 {
		t.Errorf("DRAM energy = %v, want %v", b.DRAM, wantDRAM)
	}
	wantCAPS := 1e6*p.CAPSTablePJ*1e-12 + p.CAPSStaticWatts*float64(cfg.NumSMs)
	if math.Abs(b.CAPS-wantCAPS) > 1e-12 {
		t.Errorf("CAPS energy = %v, want %v", b.CAPS, wantCAPS)
	}
	total := b.ALU + b.Shared + b.L1 + b.L2 + b.ICNT + b.DRAM + b.CAPS + b.Static
	if math.Abs(b.Total()-total) > 1e-12 {
		t.Error("Total does not sum the components")
	}
}

func TestEstimateWithoutCAPS(t *testing.T) {
	st := &stats.Sim{Cycles: 1000, PrefTableLookup: 1e6}
	b := Estimate(DefaultParams(), config.Default(), st, false)
	if b.CAPS != 0 {
		t.Errorf("CAPS energy without CAPS = %v, want 0", b.CAPS)
	}
}

func TestNormalizedFasterRunSavesStaticEnergy(t *testing.T) {
	cfg := config.Default()
	p := DefaultParams()
	base := &stats.Sim{Cycles: 2_000_000, ALUOps: 1000, DRAMReads: 1000}
	faster := &stats.Sim{Cycles: 1_800_000, ALUOps: 1000, DRAMReads: 1000, PrefTableLookup: 100}
	n := Normalized(p, cfg, faster, base)
	if n >= 1.0 {
		t.Errorf("10%% faster run with equal traffic should save energy, got %v", n)
	}
	if n < 0.85 {
		t.Errorf("normalized energy %v implausibly low", n)
	}
}

func TestNormalizedExtraTrafficCostsEnergy(t *testing.T) {
	cfg := config.Default()
	p := DefaultParams()
	base := &stats.Sim{Cycles: 1_000_000, DRAMReads: 1000}
	wasteful := &stats.Sim{Cycles: 1_000_000, DRAMReads: 3000}
	if n := Normalized(p, cfg, wasteful, base); n <= 1.0 {
		t.Errorf("3x DRAM traffic at equal runtime must cost energy, got %v", n)
	}
}

func TestNormalizedZeroBaseline(t *testing.T) {
	if n := Normalized(DefaultParams(), config.Default(), &stats.Sim{}, &stats.Sim{}); n != 0 {
		t.Errorf("zero baseline should yield 0, got %v", n)
	}
}
