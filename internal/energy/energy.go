// Package energy estimates GPU energy for a simulation run, replacing the
// paper's GPUWattch + CACTI + synthesized-RTL flow (Section VI-F) with an
// event-energy model: each architectural event carries a per-event energy,
// and idle structures draw static power for the duration of the run. The
// CAPS table parameters (15.07 pJ per access, 550 µW static per SM) are the
// paper's own synthesis numbers.
package energy

import (
	"caps/internal/config"
	"caps/internal/stats"
)

// Params holds per-event energies in picojoules and static power in watts.
// Defaults approximate 40 nm-class GPUs (GPUWattch-era numbers).
type Params struct {
	ALUOpPJ      float64 // per warp ALU instruction (32 lanes)
	SharedOpPJ   float64 // per shared-memory operation
	L1AccessPJ   float64 // per L1 probe/fill
	L2AccessPJ   float64 // per L2 access
	ICNTFlitPJ   float64 // per interconnect traversal
	DRAMAccessPJ float64 // per DRAM line read/write

	// CAPS hardware (Section V-D).
	CAPSTablePJ     float64 // per PerCTA/DIST access
	CAPSStaticWatts float64 // per SM

	// Machine static power (whole GPU), watts.
	StaticWatts float64
}

// DefaultParams returns the calibration used by the experiments.
func DefaultParams() Params {
	return Params{
		ALUOpPJ:      220,
		SharedOpPJ:   120,
		L1AccessPJ:   80,
		L2AccessPJ:   160,
		ICNTFlitPJ:   100,
		DRAMAccessPJ: 2600,

		CAPSTablePJ:     15.07,
		CAPSStaticWatts: 550e-6,

		StaticWatts: 45,
	}
}

// Breakdown reports per-component energy in joules.
type Breakdown struct {
	ALU    float64
	Shared float64
	L1     float64
	L2     float64
	ICNT   float64
	DRAM   float64
	CAPS   float64
	Static float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.ALU + b.Shared + b.L1 + b.L2 + b.ICNT + b.DRAM + b.CAPS + b.Static
}

// Estimate computes the energy of one run. withCAPS adds the prefetcher's
// dynamic (table accesses) and static contributions.
func Estimate(p Params, cfg config.GPUConfig, st *stats.Sim, withCAPS bool) Breakdown {
	const pj = 1e-12
	seconds := float64(st.Cycles) / (float64(cfg.CoreClockMHz) * 1e6)
	b := Breakdown{
		ALU:    float64(st.ALUOps) * p.ALUOpPJ * pj,
		Shared: float64(st.SharedMemOps) * p.SharedOpPJ * pj,
		L1:     float64(st.L1Accesses) * p.L1AccessPJ * pj,
		L2:     float64(st.L2Accesses) * p.L2AccessPJ * pj,
		ICNT:   float64(st.CoreToMemRequests+st.L2Accesses) * p.ICNTFlitPJ * pj,
		DRAM:   float64(st.DRAMReads+st.StoresIssued) * p.DRAMAccessPJ * pj,
		Static: p.StaticWatts * seconds,
	}
	if withCAPS {
		b.CAPS = float64(st.PrefTableLookup)*p.CAPSTablePJ*pj +
			p.CAPSStaticWatts*float64(cfg.NumSMs)*seconds
	}
	return b
}

// Normalized returns run energy relative to a baseline run (Fig. 15):
// values below 1.0 mean CAPS saved energy (shorter runtime cuts static
// energy; extra prefetch traffic adds dynamic energy).
func Normalized(p Params, cfg config.GPUConfig, caps, baseline *stats.Sim) float64 {
	e := Estimate(p, cfg, caps, true).Total()
	base := Estimate(p, cfg, baseline, false).Total()
	if base == 0 {
		return 0
	}
	return e / base
}
