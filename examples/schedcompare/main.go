// schedcompare reproduces the paper's timeliness argument (Fig. 14b): the
// same CTA-aware prefetcher gains distance between prefetch and demand as
// the warp scheduler gets smarter about leading warps — LRR < two-level <
// prefetch-aware two-level (PAS).
//
//	go run ./examples/schedcompare
package main

import (
	"fmt"
	"log"

	"caps/internal/config"
	"caps/internal/kernels"
	"caps/internal/sim"
)

func main() {
	cfg := config.Default()
	cfg.MaxInsts = 150_000

	kernel, err := kernels.ByAbbr("CNV")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CAPS prefetch timeliness on %s by scheduler:\n\n", kernel.Abbr)
	fmt.Printf("%-8s %-12s %-10s %-10s %s\n", "sched", "distance", "useful", "late", "wakeups")
	for _, sc := range []config.SchedulerKind{
		config.SchedLRR, config.SchedTwoLevel, config.SchedPAS,
	} {
		g, err := sim.New(cfg, kernel, sim.Options{Prefetcher: "caps", Scheduler: sc})
		if err != nil {
			log.Fatal(err)
		}
		st, err := g.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.1f cyc %-10d %-10d %d\n",
			sc, st.MeanPrefetchDistance(), st.PrefUseful, st.PrefLate, st.WakeupPromotions)
	}
	fmt.Println("\nPAS pushes leading warps ahead so base addresses are known early,")
	fmt.Println("then wakes the warps whose data arrives — lifting the distance")
	fmt.Println("between prefetch and demand (the paper reports 64 → 145 → 173).")
}
