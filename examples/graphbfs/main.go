// graphbfs demonstrates CAPS's quality-control mechanisms on an irregular
// workload (Rodinia BFS, the paper's Fig. 6b example): the thread-indexed
// metadata loads (g_graph_mask, g_graph_nodes, g_cost) are prefetched,
// while the data-dependent edge/visited gathers are detected as indirect
// and excluded — keeping accuracy high at reduced coverage.
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"

	"caps/internal/config"
	"caps/internal/kernels"
	"caps/internal/sim"
)

func main() {
	cfg := config.Default()
	cfg.MaxInsts = 150_000

	bfs, err := kernels.ByAbbr("BFS")
	if err != nil {
		log.Fatal(err)
	}

	loads, indirect := 0, 0
	for _, l := range bfs.Loads {
		if l.Store {
			continue
		}
		loads++
		if l.Indirect {
			indirect++
		}
	}
	fmt.Printf("BFS static loads: %d total, %d indirect (excluded from prefetch)\n",
		loads, indirect)

	for _, pf := range []string{"none", "inter", "caps"} {
		opt := sim.Options{Prefetcher: pf}
		if pf == "caps" {
			opt.Scheduler = config.SchedPAS
		}
		g, err := sim.New(cfg, bfs, opt)
		if err != nil {
			log.Fatal(err)
		}
		st, err := g.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s ipc=%.3f coverage=%.3f accuracy=%.3f issued=%d dropped=%d\n",
			pf, st.IPC(), st.Coverage(), st.Accuracy(), st.PrefIssued, st.PrefDropped)
	}
	fmt.Println("\nCAPS keeps accuracy high on the strided metadata loads and")
	fmt.Println("issues nothing for the indirect gathers; INTER prefetches into")
	fmt.Println("them blindly and wastes bandwidth.")
}
