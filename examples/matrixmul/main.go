// matrixmul reproduces the paper's motivating analysis (Fig. 1) on the
// matrixMul benchmark: naive inter-warp stride prediction is accurate only
// within a CTA (8 warps for MM), and prefetching far enough ahead to hide
// memory latency means crossing CTA boundaries, where it breaks. It then
// shows how CAPS closes exactly that gap.
//
//	go run ./examples/matrixmul
package main

import (
	"fmt"
	"log"

	"caps/internal/config"
	"caps/internal/experiments"
	"caps/internal/kernels"
	"caps/internal/sim"
)

func main() {
	cfg := config.Default()
	cfg.MaxInsts = 150_000

	fmt.Println("Inter-warp stride prediction on matrixMul (Fig. 1):")
	fig1, err := experiments.Figure1(cfg, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig1.String())
	fmt.Println()

	// Now the same benchmark under the CTA-aware prefetcher: the per-CTA
	// base addresses come from leading warps, so accuracy holds across
	// the whole SM.
	mm, err := kernels.ByAbbr("MM")
	if err != nil {
		log.Fatal(err)
	}
	g, err := sim.New(cfg, mm, sim.Options{Prefetcher: "caps", Scheduler: config.SchedPAS})
	if err != nil {
		log.Fatal(err)
	}
	st, err := g.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CAPS on the same benchmark:")
	fmt.Printf("  prefetch accuracy : %.1f%% (address verification: %d ok / %d bad)\n",
		100*st.Accuracy(), st.PrefVerifyOK, st.PrefVerifyBad)
	fmt.Printf("  prefetch coverage : %.1f%%\n", 100*st.Coverage())
	fmt.Printf("  prefetch distance : %.0f cycles\n", st.MeanPrefetchDistance())
}
