// Quickstart: simulate one benchmark with and without CAPS and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"caps/internal/config"
	"caps/internal/kernels"
	"caps/internal/sim"
)

func main() {
	// Start from the paper's Table III machine (Fermi GTX480-class) and
	// shorten the run so the example finishes in seconds.
	cfg := config.Default()
	cfg.MaxInsts = 150_000

	kernel, err := kernels.ByAbbr("CNV") // convolutionSeparable: the paper's best case
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: two-level warp scheduler, no prefetching.
	base, err := run(cfg, kernel, sim.Options{Prefetcher: "none"})
	if err != nil {
		log.Fatal(err)
	}

	// CAPS: the CTA-aware prefetcher paired with the prefetch-aware
	// scheduler, exactly as the paper evaluates it.
	caps, err := run(cfg, kernel, sim.Options{
		Prefetcher: "caps",
		Scheduler:  config.SchedPAS,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark            : %s (%s)\n", kernel.Name, kernel.Abbr)
	fmt.Printf("baseline IPC         : %.3f\n", base.IPC())
	fmt.Printf("CAPS IPC             : %.3f\n", caps.IPC())
	fmt.Printf("speedup              : %.3fx\n", caps.IPC()/base.IPC())
	fmt.Printf("prefetch coverage    : %.1f%%\n", 100*caps.Coverage())
	fmt.Printf("prefetch accuracy    : %.1f%%\n", 100*caps.Accuracy())
	fmt.Printf("prefetch distance    : %.0f cycles\n", caps.MeanPrefetchDistance())
}

func run(cfg config.GPUConfig, k *kernels.Kernel, opt sim.Options) (statsLike, error) {
	g, err := sim.New(cfg, k, opt)
	if err != nil {
		return nil, err
	}
	return g.Run()
}

// statsLike is the slice of the stats API this example consumes.
type statsLike interface {
	IPC() float64
	Coverage() float64
	Accuracy() float64
	MeanPrefetchDistance() float64
}
