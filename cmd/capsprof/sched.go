package main

import (
	"flag"
	"fmt"
	"os"

	"caps/internal/schedlens"
)

// sched renders a schedlens profile (capsim -schedlens, capsweep
// -schedlens-dir): a terminal report by default, a self-contained HTML one
// with -html. The report covers the four decision-observability
// dimensions — CTA lifetime timelines with per-SM balance and tail
// attribution, scheduler pick-outcome provenance, CAP/DIST table
// dynamics, and leading-warp effectiveness — with ledger-truncation
// warnings surfaced in both renderings.
func sched(args []string) int {
	fs := flag.NewFlagSet("sched", flag.ExitOnError)
	htmlOut := fs.String("html", "", "write a self-contained HTML report (inline SVG CTA timelines) to this file")
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		fmt.Fprintln(os.Stderr, "capsprof sched: need exactly one scheduler-profile JSON path")
		return 2
	}
	sp, err := schedlens.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := sp.WriteHTML(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		fmt.Printf("wrote %s (%s/%s, %d CTAs)\n", *htmlOut, sp.Meta.Bench, sp.Meta.Prefetcher, sp.Timelines.Launches)
		return 0
	}
	if err := sp.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	return 0
}

// schedDiff gates scheduler-behavior regressions between two schedlens
// profiles: leading-warp effectiveness, PAS leading-promoted fraction,
// CAP/DIST hit rates, and per-SM CTA-retire balance dropping past their
// thresholds exit 1. Only drops gate — an improvement never fails.
func schedDiff(args []string) int {
	fs := flag.NewFlagSet("sched-diff", flag.ExitOnError)
	var th schedlens.Thresholds // zero fields fall back to schedlens defaults
	fs.Float64Var(&th.EffectivenessAbs, "effectiveness", 0, "max absolute leading-warp-effectiveness drop (0 = default)")
	fs.Float64Var(&th.PromotedAbs, "promoted", 0, "max absolute leading-promoted-fraction drop (0 = default)")
	fs.Float64Var(&th.CTAHitAbs, "ctahit", 0, "max absolute CAP hit-rate drop (0 = default)")
	fs.Float64Var(&th.DistHitAbs, "disthit", 0, "max absolute DIST hit-rate drop (0 = default)")
	fs.Float64Var(&th.BalanceAbs, "balance", 0, "max absolute per-SM retire-balance drop (0 = default)")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		fmt.Fprintln(os.Stderr, "capsprof sched-diff: need <base> and <current> scheduler-profile JSON paths")
		return 2
	}
	base, err := schedlens.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	cur, err := schedlens.ReadFile(pos[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	regs := schedlens.Diff(base, cur, th)
	if len(regs) == 0 {
		fmt.Println("capsprof sched-diff: no regressions")
		return 0
	}
	fmt.Printf("capsprof sched-diff: %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}
