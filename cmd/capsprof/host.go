package main

import (
	"flag"
	"fmt"
	"os"

	"caps/internal/hostprof"
	"caps/internal/profile"
)

// host renders a hostprof profile (capsim -hostprof, capsweep
// -hostprof-dir): a terminal report by default, a self-contained HTML one
// with -html. -profile joins the run's capsprof CPI stack into the HTML so
// host time and simulated time sit in one report. -validate additionally
// checks the profile's accounting invariants and exits non-zero when they
// don't hold.
func host(args []string) int {
	fs := flag.NewFlagSet("host", flag.ExitOnError)
	htmlOut := fs.String("html", "", "write a self-contained HTML report to this file")
	simProf := fs.String("profile", "", "join this capsprof profile JSON into the HTML report")
	validate := fs.Bool("validate", false, "check accounting invariants (phase sum, sampling coverage)")
	tol := fs.Float64("tolerance", hostprof.DefaultTolerance, "sampling-coverage tolerance for -validate")
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		fmt.Fprintln(os.Stderr, "capsprof host: need exactly one host-profile JSON path")
		return 2
	}
	hp, err := hostprof.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	if *validate {
		if err := hp.Validate(*tol); err != nil {
			fmt.Fprintf(os.Stderr, "capsprof host: %s: %v\n", pos[0], err)
			return 1
		}
		fmt.Printf("capsprof host: %s: accounting invariants hold (coverage %.0f%%)\n", pos[0], hp.Coverage()*100)
	}
	if *htmlOut != "" {
		var sim *profile.Profile
		if *simProf != "" {
			sim, err = profile.ReadFile(*simProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capsprof:", err)
				return 1
			}
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := hp.WriteHTML(f, sim); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		fmt.Printf("wrote %s (%s/%s, %d workers)\n", *htmlOut, hp.Bench, hp.Prefetcher, len(hp.Workers))
		return 0
	}
	if err := hp.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	return 0
}

// hostDiff gates host-time regressions between two hostprof profiles:
// wall-clock blowup, phase-share shifts, worker-utilization drops, and
// skip-efficiency drops past their thresholds exit 1. Context mismatches
// (different machine, worker count, idle-skip setting) are printed as
// warnings first — they usually explain the regression.
func hostDiff(args []string) int {
	fs := flag.NewFlagSet("host-diff", flag.ExitOnError)
	var th hostprof.Thresholds // zero fields fall back to hostprof defaults
	fs.Float64Var(&th.WallFrac, "wall", 0, "max fractional wall-clock increase (0 = default)")
	fs.Float64Var(&th.PhaseShareAbs, "phase", 0, "max absolute phase-share increase (0 = default)")
	fs.Float64Var(&th.UtilAbs, "util", 0, "max absolute mean-utilization drop (0 = default)")
	fs.Float64Var(&th.SkipAbs, "skip", 0, "max absolute skip-efficiency drop (0 = default)")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		fmt.Fprintln(os.Stderr, "capsprof host-diff: need <base> and <current> host-profile JSON paths")
		return 2
	}
	base, err := hostprof.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	cur, err := hostprof.ReadFile(pos[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	for _, w := range hostprof.ContextMismatch(base.Host, cur.Host) {
		fmt.Printf("warning: host context mismatch: %s\n", w)
	}
	regs := hostprof.Diff(base, cur, th)
	if len(regs) == 0 {
		fmt.Println("capsprof host-diff: no regressions")
		return 0
	}
	fmt.Printf("capsprof host-diff: %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}
