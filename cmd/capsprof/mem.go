package main

import (
	"flag"
	"fmt"
	"os"

	"caps/internal/memlens"
)

// mem renders a memlens profile (capsim -memlens, capsweep -memlens-dir):
// a terminal report by default, a self-contained HTML one with -html. The
// report covers the four memory-observability dimensions — θ/Δ address
// structure per load PC, prefetch timeliness, reuse distance per cache
// level, and DRAM/queue locality — with ledger-truncation warnings
// surfaced in both renderings.
func mem(args []string) int {
	fs := flag.NewFlagSet("mem", flag.ExitOnError)
	htmlOut := fs.String("html", "", "write a self-contained HTML report to this file")
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		fmt.Fprintln(os.Stderr, "capsprof mem: need exactly one memory-profile JSON path")
		return 2
	}
	mp, err := memlens.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := mp.WriteHTML(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		fmt.Printf("wrote %s (%s/%s, %d load PCs)\n", *htmlOut, mp.Meta.Bench, mp.Meta.Prefetcher, len(mp.AddrStructure.PCs))
		return 0
	}
	if err := mp.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	return 0
}

// memDiff gates memory-behavior regressions between two memlens profiles:
// θ/Δ explainability, accurate-prefetch share, row-buffer hit rate,
// sampled-reuse fraction per level, and bank spread dropping past their
// thresholds exit 1. Only drops gate — an improvement never fails.
func memDiff(args []string) int {
	fs := flag.NewFlagSet("mem-diff", flag.ExitOnError)
	var th memlens.Thresholds // zero fields fall back to memlens defaults
	fs.Float64Var(&th.ExplainedAbs, "explained", 0, "max absolute θ/Δ explained-fraction drop (0 = default)")
	fs.Float64Var(&th.AccurateAbs, "accurate", 0, "max absolute accurate-prefetch-share drop (0 = default)")
	fs.Float64Var(&th.RowHitAbs, "rowhit", 0, "max absolute row-buffer hit-rate drop (0 = default)")
	fs.Float64Var(&th.ReuseFracAbs, "reuse", 0, "max absolute sampled-reuse-fraction drop per level (0 = default)")
	fs.Float64Var(&th.BankSpreadAbs, "spread", 0, "max absolute bank-spread drop (0 = default)")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		fmt.Fprintln(os.Stderr, "capsprof mem-diff: need <base> and <current> memory-profile JSON paths")
		return 2
	}
	base, err := memlens.ReadFile(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	cur, err := memlens.ReadFile(pos[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	regs := memlens.Diff(base, cur, th)
	if len(regs) == 0 {
		fmt.Println("capsprof mem-diff: no regressions")
		return 0
	}
	fmt.Printf("capsprof mem-diff: %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}
