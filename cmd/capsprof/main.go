// Command capsprof interprets profiles produced by capsim -profile /
// capsweep -profile-dir: it renders human-readable reports and gates
// performance regressions in CI.
//
// Usage:
//
//	capsprof report run.profile.json -html report.html [-json normalized.json]
//	capsprof diff base.profile.json cur.profile.json [-ipc 0.01] [-stall 0.01]
//	capsprof diff BENCH_caps.json cur.profile.json
//	capsprof diff BENCH_caps.json BENCH_new.json
//	capsprof speed-diff BENCH_speed.json BENCH_speed_new.json [-tolerance 0.2]
//	capsprof host run.host.json [-html report.html] [-profile run.profile.json] [-validate]
//	capsprof host-diff base.host.json cur.host.json
//	capsprof mem run.mem.json [-html report.html]
//	capsprof mem-diff base.mem.json cur.mem.json
//	capsprof sched run.sched.json [-html report.html]
//	capsprof sched-diff base.sched.json cur.sched.json
//
// diff exits 1 when any metric regresses past its threshold, 0 otherwise —
// wire it into CI after a sweep to turn perf eyeballing into a gate.
// speed-diff does the same for simulator wall-clock speedups (capsweep
// -speed-json): it compares base-vs-tuned speedup ratios, so the gate
// holds even when the two reports come from machines of different speeds.
package main

import (
	"flag"
	"fmt"
	"os"

	"caps/internal/experiments"
	"caps/internal/profile"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "report":
		return report(args[1:])
	case "diff":
		return diff(args[1:])
	case "speed-diff":
		return speedDiff(args[1:])
	case "host":
		return host(args[1:])
	case "host-diff":
		return hostDiff(args[1:])
	case "mem":
		return mem(args[1:])
	case "mem-diff":
		return memDiff(args[1:])
	case "sched":
		return sched(args[1:])
	case "sched-diff":
		return schedDiff(args[1:])
	case "-h", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "capsprof: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

// parseArgs runs fs over args but, unlike flag's default, keeps going after
// positional arguments so `capsprof report run.json -html out.html` works.
// It returns the positional arguments in order.
func parseArgs(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for {
		fs.Parse(args)
		rest := fs.Args()
		if len(rest) == 0 {
			return pos
		}
		pos = append(pos, rest[0])
		args = rest[1:]
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  capsprof report <profile.json> [-html out.html] [-json out.json]
      render a self-contained HTML report (stall-stack SVGs, per-PC ledger)
      and/or re-emit the normalized profile JSON

  capsprof diff <base> <current> [-ipc frac] [-stall frac] [-coverage abs] [-accuracy abs]
      compare two profiles (or a BENCH_caps.json baseline against a profile
      or another bench report) and exit 1 on any regression past thresholds

  capsprof speed-diff <base-speed.json> <current-speed.json> [-tolerance frac]
      compare two capsweep -speed-json reports and exit 1 when any
      benchmark's (or the aggregate) serial-vs-tuned speedup fell more
      than the tolerance fraction below the baseline's; host-context
      mismatches between the reports are printed as warnings

  capsprof host <run.host.json> [-html out.html] [-profile run.profile.json] [-validate]
      render a wall-clock self-profile (capsim -hostprof, capsweep
      -hostprof-dir): phase/worker/skip attribution as text, or a
      self-contained HTML report; -profile joins the run's CPI stack in

  capsprof host-diff <base.host.json> <current.host.json> [-wall|-phase|-util|-skip frac]
      compare two host profiles and exit 1 on wall-clock, phase-share,
      utilization, or skip-efficiency regressions past thresholds

  capsprof mem <run.mem.json> [-html out.html]
      render a memory-hierarchy profile (capsim -memlens, capsweep
      -memlens-dir): θ/Δ address structure per load PC, prefetch
      timeliness, reuse distance per cache level, DRAM/queue locality

  capsprof mem-diff <base.mem.json> <current.mem.json> [-explained|-accurate|-rowhit|-reuse|-spread abs]
      compare two memory profiles and exit 1 on explainability,
      prefetch-accuracy, row-hit-rate, reuse, or bank-spread drops
      past thresholds

  capsprof sched <run.sched.json> [-html out.html]
      render a scheduler/CTA-decision profile (capsim -schedlens,
      capsweep -schedlens-dir): CTA lifetime timelines, pick-outcome
      provenance, CAP/DIST table dynamics, leading-warp effectiveness

  capsprof sched-diff <base.sched.json> <current.sched.json> [-effectiveness|-promoted|-ctahit|-disthit|-balance abs]
      compare two scheduler profiles and exit 1 on leading-warp
      effectiveness, promotion-fraction, table-hit-rate, or CTA-balance
      drops past thresholds
`)
}

func report(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	htmlOut := fs.String("html", "", "write the HTML report to this file (default: <profile>.html)")
	jsonOut := fs.String("json", "", "re-emit the normalized profile JSON to this file")
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		fmt.Fprintln(os.Stderr, "capsprof report: need exactly one profile JSON path")
		return 2
	}
	path := pos[0]
	p, err := profile.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	out := *htmlOut
	if out == "" {
		out = path + ".html"
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	if err := profile.WriteHTML(f, p); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	fmt.Printf("wrote %s (%s/%s, %d cycles, %d PCs)\n", out, p.Meta.Bench, p.Meta.Prefetcher, p.TotalCycles, len(p.PCs))
	if p.TruncatedPCs > 0 || p.TruncatedCTAs > 0 {
		fmt.Fprintf(os.Stderr, "capsprof report: WARNING: ledger cap reached — %d PC and %d CTA events uncounted; per-PC/per-CTA tables understate activity\n",
			p.TruncatedPCs, p.TruncatedCTAs)
	}
	if *jsonOut != "" {
		if err := p.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return 0
}

func diff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := profile.DefaultThresholds()
	fs.Float64Var(&th.IPCFrac, "ipc", th.IPCFrac, "max fractional IPC drop")
	fs.Float64Var(&th.StallFrac, "stall", th.StallFrac, "max absolute stall-share increase per bucket")
	fs.Float64Var(&th.CoverageAbs, "coverage", th.CoverageAbs, "max absolute coverage drop")
	fs.Float64Var(&th.AccuracyAbs, "accuracy", th.AccuracyAbs, "max absolute accuracy drop")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		fmt.Fprintln(os.Stderr, "capsprof diff: need <base> and <current> paths")
		return 2
	}
	base, err := profile.ReadBaseline(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	cur, err := profile.ReadBaseline(pos[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}

	var regs []profile.Regression
	switch {
	case base.Profile != nil && cur.Profile != nil:
		regs = profile.Diff(base.Profile, cur.Profile, th)
	case base.Bench != nil && cur.Profile != nil:
		regs, err = profile.DiffBench(base.Bench, cur.Profile, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsprof:", err)
			return 1
		}
	case base.Bench != nil && cur.Bench != nil:
		regs = profile.DiffBenchReports(base.Bench, cur.Bench, th)
	default:
		fmt.Fprintln(os.Stderr, "capsprof: a full profile cannot baseline a bench report (swap the arguments)")
		return 2
	}

	if len(regs) == 0 {
		fmt.Println("capsprof diff: no regressions")
		return 0
	}
	fmt.Printf("capsprof diff: %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}

func speedDiff(args []string) int {
	fs := flag.NewFlagSet("speed-diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.20, "max fractional speedup drop before failing")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		fmt.Fprintln(os.Stderr, "capsprof speed-diff: need <base> and <current> BENCH_speed.json paths")
		return 2
	}
	base, err := experiments.ReadSpeedReport(pos[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	cur, err := experiments.ReadSpeedReport(pos[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsprof:", err)
		return 1
	}
	for _, w := range experiments.HostMismatch(base, cur) {
		fmt.Printf("warning: host context mismatch: %s\n", w)
	}
	msgs := experiments.DiffSpeed(base, cur, *tol)
	if len(msgs) == 0 {
		fmt.Printf("capsprof speed-diff: no regressions (aggregate %.2fx, baseline %.2fx)\n", cur.Speedup, base.Speedup)
		return 0
	}
	fmt.Printf("capsprof speed-diff: %d regression(s):\n", len(msgs))
	for _, m := range msgs {
		fmt.Println("  " + m)
	}
	return 1
}
