// Command simcheck is the simulator's correctness gate. Its modes:
//
//	simcheck [-mode=lint] [./...]
//	    Type-check the whole module and run the simulator lint suite
//	    (detlint, cyclelint, statlint — see internal/analysis). Exits 1
//	    if any diagnostic survives //simcheck:allow suppression.
//
//	simcheck -mode=hotlint|isolint|all [-baseline file] [-update-baseline] [-inventory]
//	    Run the call-graph-aware module analyzers: hotlint flags
//	    heap-allocating constructs reachable from //caps:hotpath roots,
//	    isolint proves per-SM isolation of everything reachable from
//	    //caps:isolated roots (see internal/analysis). -mode=all also runs
//	    the per-package lint suite. Findings are ratcheted against the
//	    committed baseline (SIMCHECK_BASELINE at the module root):
//	    anything beyond it exits 1, shrunk debt is reported stale, and
//	    -update-baseline rewrites the file to the current findings.
//	    -inventory prints the //caps:shared-sync sync-point inventory —
//	    the cross-SM touch points a parallel tick must serialize.
//
//	simcheck -mode=determinism [-benches STE,BFS,MM] [-insts N] [-every K]
//	    Run each benchmark twice with the invariant sanitizer enabled
//	    (internal/invariant) and compare FNV-1a hashes of the final
//	    statistics + memory-system state. With -every K the comparison
//	    covers a periodic checkpoint series (one state hash every K
//	    cycles), catching transient divergences that cancel out by the
//	    end. Exits 1 on a sanitizer violation or a hash divergence.
//
//	simcheck -mode=tracecheck file.json [more.json ...]
//	    Validate Chrome trace-event files produced by `capsim -trace` or
//	    `capsweep -trace-dir`: well-formed JSON, cycle-monotonic per
//	    track, and report the track/event census. Exits 1 on a malformed
//	    or out-of-order trace.
//
// The lint and determinism modes are wired into `make check` and CI;
// tracecheck backs `make trace-smoke`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"caps/internal/analysis"
	"caps/internal/config"
	"caps/internal/invariant/determinism"
	"caps/internal/obs"
	"caps/internal/sim"
)

// baselineName is the committed ratchet file at the module root.
const baselineName = "SIMCHECK_BASELINE"

func main() {
	mode := flag.String("mode", "lint", "lint, hotlint, isolint, all, determinism or tracecheck")
	benches := flag.String("benches", "STE,BFS,MM,CP", "determinism mode: comma-separated benchmark abbreviations")
	insts := flag.Int64("insts", 60_000, "determinism mode: per-run instruction cap (0 = full run)")
	every := flag.Int64("every", 0, "determinism mode: also compare periodic state-hash checkpoints every N cycles (0 = final hash only)")
	baseline := flag.String("baseline", "", "hotlint/isolint: ratchet baseline file (default <module root>/"+baselineName+")")
	updateBaseline := flag.Bool("update-baseline", false, "hotlint/isolint: rewrite the baseline to the current findings and exit")
	inventory := flag.Bool("inventory", false, "isolint: print the //caps:shared-sync sync-point inventory")
	flag.Parse()

	switch *mode {
	case "lint":
		os.Exit(lint())
	case "hotlint", "isolint", "all":
		os.Exit(lintModule(*mode, modeOpts{
			baseline:       *baseline,
			updateBaseline: *updateBaseline,
			inventory:      *inventory,
		}))
	case "determinism":
		os.Exit(checkDeterminism(strings.Split(*benches, ","), *insts, *every))
	case "tracecheck":
		os.Exit(checkTraces(flag.Args()))
	default:
		fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q (want lint, hotlint, isolint, all, determinism or tracecheck)\n", *mode)
		os.Exit(2)
	}
}

type modeOpts struct {
	baseline       string
	updateBaseline bool
	inventory      bool
}

// loadPkgs type-checks the enclosing module. Package patterns on the
// command line are accepted for `go run ./cmd/simcheck ./...` ergonomics
// but every mode always audits the whole module: each analyzer scopes
// itself.
func loadPkgs() (string, []*analysis.Package, error) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		return "", nil, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return "", nil, err
	}
	return root, pkgs, nil
}

// lint runs the per-package analyzer suite.
func lint() int {
	_, pkgs, err := loadPkgs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	diags, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// lintModule runs the module-level analyzers (hotlint/isolint) against the
// ratchet baseline; -mode=all additionally runs the per-package suite
// (which is never baselined — it must stay clean outright).
func lintModule(mode string, opts modeOpts) int {
	root, pkgs, err := loadPkgs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	var analyzers []*analysis.ModuleAnalyzer
	switch mode {
	case "hotlint":
		analyzers = []*analysis.ModuleAnalyzer{analysis.Hotlint}
	case "isolint":
		analyzers = []*analysis.ModuleAnalyzer{analysis.Isolint}
	default:
		analyzers = analysis.AllModule()
	}
	mdiags, err := analysis.CheckModule(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	basePath := opts.baseline
	if basePath == "" {
		basePath = filepath.Join(root, baselineName)
	}
	if opts.updateBaseline {
		if err := analysis.WriteBaseline(basePath, mdiags); err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			return 2
		}
		fmt.Printf("simcheck: baseline %s rewritten with %d finding(s)\n", basePath, len(mdiags))
		return 0
	}
	base, err := analysis.LoadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	kept, stale := analysis.ApplyBaseline(mdiags, base)
	for _, s := range stale {
		fmt.Fprintln(os.Stderr, "simcheck: stale baseline: "+s)
	}

	var pkgDiags []analysis.Diagnostic
	if mode == "all" {
		pkgDiags, err = analysis.Check(pkgs, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			return 2
		}
	}
	for _, d := range pkgDiags {
		fmt.Println(d)
	}
	for _, d := range kept {
		fmt.Println(d)
	}
	if opts.inventory {
		inv := analysis.SharedInventory(pkgs)
		fmt.Printf("# shared-sync inventory: %d touch point(s) the parallel-tick barrier must serialize\n", len(inv))
		for _, p := range inv {
			fmt.Printf("%-14s %s:%d\t%s\t%s\n", p.Phase, p.Pos.Filename, p.Pos.Line, p.Func, p.Desc)
		}
	}
	if n := len(kept) + len(pkgDiags); n > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d un-baselined finding(s)\n", n)
		return 1
	}
	return 0
}

// checkDeterminism replays each benchmark twice under the sanitizer. CAPS
// benchmarks run on the prefetch-aware scheduler, mirroring the paper's
// evaluation pairing; a no-prefetch baseline rides along for contrast.
// With every > 0 the whole periodic checkpoint series is compared, not
// just the final hash, so a transient divergence that happens to cancel
// out by the end still fails the gate.
func checkDeterminism(benches []string, insts, every int64) int {
	cfg := config.Default()
	cfg.NumSMs = 4
	cfg.MaxInsts = insts

	failed := false
	for _, b := range benches {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		for _, pf := range []string{"caps", "none"} {
			opt := []sim.Option{sim.WithPrefetcher(pf), sim.WithScheduler(determinism.SchedulerFor(pf))}
			if every > 0 {
				n, h, err := determinism.CheckSeries(cfg, b, every, opt...)
				if err != nil {
					fmt.Fprintf(os.Stderr, "simcheck: %s/%s: %v\n", b, pf, err)
					failed = true
					continue
				}
				fmt.Printf("%-6s %-5s reproducible (%d checkpoints, state hash %#016x)\n", b, pf, n, h)
				continue
			}
			h, err := determinism.Check(cfg, b, opt...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simcheck: %s/%s: %v\n", b, pf, err)
				failed = true
				continue
			}
			fmt.Printf("%-6s %-5s reproducible (state hash %#016x)\n", b, pf, h)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// checkTraces validates each Chrome trace file and prints its census.
func checkTraces(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "simcheck: tracecheck needs at least one trace file")
		return 2
	}
	failed := false
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			failed = true
			continue
		}
		sum, err := obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simcheck: %s: %v\n", p, err)
			failed = true
			continue
		}
		fmt.Printf("%s: %d events on %d tracks (%d SM), %d sched events, %d complete prefetch lifecycles, %d dropped\n",
			p, sum.Events, sum.Tracks, sum.SMTracks, sum.SchedEvents, sum.PrefLifecycle, sum.Dropped)
	}
	if failed {
		return 1
	}
	return 0
}
