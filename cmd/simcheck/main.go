// Command simcheck is the simulator's correctness gate. It has two modes:
//
//	simcheck [-mode=lint] [./...]
//	    Type-check the whole module and run the simulator lint suite
//	    (detlint, cyclelint, statlint — see internal/analysis). Exits 1
//	    if any diagnostic survives //simcheck:allow suppression.
//
//	simcheck -mode=determinism [-benches STE,BFS,MM] [-insts N] [-every K]
//	    Run each benchmark twice with the invariant sanitizer enabled
//	    (internal/invariant) and compare FNV-1a hashes of the final
//	    statistics + memory-system state. With -every K the comparison
//	    covers a periodic checkpoint series (one state hash every K
//	    cycles), catching transient divergences that cancel out by the
//	    end. Exits 1 on a sanitizer violation or a hash divergence.
//
//	simcheck -mode=tracecheck file.json [more.json ...]
//	    Validate Chrome trace-event files produced by `capsim -trace` or
//	    `capsweep -trace-dir`: well-formed JSON, cycle-monotonic per
//	    track, and report the track/event census. Exits 1 on a malformed
//	    or out-of-order trace.
//
// The lint and determinism modes are wired into `make check` and CI;
// tracecheck backs `make trace-smoke`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"caps/internal/analysis"
	"caps/internal/config"
	"caps/internal/invariant/determinism"
	"caps/internal/obs"
	"caps/internal/sim"
)

func main() {
	mode := flag.String("mode", "lint", "lint, determinism or tracecheck")
	benches := flag.String("benches", "STE,BFS,MM,CP", "determinism mode: comma-separated benchmark abbreviations")
	insts := flag.Int64("insts", 60_000, "determinism mode: per-run instruction cap (0 = full run)")
	every := flag.Int64("every", 0, "determinism mode: also compare periodic state-hash checkpoints every N cycles (0 = final hash only)")
	flag.Parse()

	switch *mode {
	case "lint":
		os.Exit(lint())
	case "determinism":
		os.Exit(checkDeterminism(strings.Split(*benches, ","), *insts, *every))
	case "tracecheck":
		os.Exit(checkTraces(flag.Args()))
	default:
		fmt.Fprintf(os.Stderr, "simcheck: unknown mode %q (want lint, determinism or tracecheck)\n", *mode)
		os.Exit(2)
	}
}

// lint loads and type-checks the enclosing module and runs the full
// analyzer suite. Package patterns on the command line are accepted for
// `go run ./cmd/simcheck ./...` ergonomics but the suite always audits the
// whole module: each analyzer scopes itself.
func lint() int {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	diags, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// checkDeterminism replays each benchmark twice under the sanitizer. CAPS
// benchmarks run on the prefetch-aware scheduler, mirroring the paper's
// evaluation pairing; a no-prefetch baseline rides along for contrast.
// With every > 0 the whole periodic checkpoint series is compared, not
// just the final hash, so a transient divergence that happens to cancel
// out by the end still fails the gate.
func checkDeterminism(benches []string, insts, every int64) int {
	cfg := config.Default()
	cfg.NumSMs = 4
	cfg.MaxInsts = insts

	failed := false
	for _, b := range benches {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		for _, pf := range []string{"caps", "none"} {
			opt := sim.Options{Prefetcher: pf, Scheduler: determinism.SchedulerFor(pf)}
			if every > 0 {
				n, h, err := determinism.CheckSeries(cfg, b, opt, every)
				if err != nil {
					fmt.Fprintf(os.Stderr, "simcheck: %s/%s: %v\n", b, pf, err)
					failed = true
					continue
				}
				fmt.Printf("%-6s %-5s reproducible (%d checkpoints, state hash %#016x)\n", b, pf, n, h)
				continue
			}
			h, err := determinism.Check(cfg, b, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simcheck: %s/%s: %v\n", b, pf, err)
				failed = true
				continue
			}
			fmt.Printf("%-6s %-5s reproducible (state hash %#016x)\n", b, pf, h)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// checkTraces validates each Chrome trace file and prints its census.
func checkTraces(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "simcheck: tracecheck needs at least one trace file")
		return 2
	}
	failed := false
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			failed = true
			continue
		}
		sum, err := obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simcheck: %s: %v\n", p, err)
			failed = true
			continue
		}
		fmt.Printf("%s: %d events on %d tracks (%d SM), %d sched events, %d complete prefetch lifecycles, %d dropped\n",
			p, sum.Events, sum.Tracks, sum.SMTracks, sum.SchedEvents, sum.PrefLifecycle, sum.Dropped)
	}
	if failed {
		return 1
	}
	return 0
}
