package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"caps/internal/config"
	"caps/internal/experiments"
	"caps/internal/profile"
	"caps/internal/runstore"
	"caps/internal/telemetry"
)

// cmdSmoke is the CI gate for the whole telemetry+runstore stack, run
// in-process so it needs no curl, no background processes and no fixed
// port: it drives two short simulations with the telemetry server live,
// scrapes /metrics through the strict parser, reads an SSE event off
// /events, checks both runs landed in the store, and verifies the diff
// gate both passes a clean pair and fails an injected regression.
func cmdSmoke(args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ContinueOnError)
	insts := fs.Int64("insts", 40_000, "per-run instruction cap")
	bench := fs.String("bench", "MM", "benchmark to run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	storeDir, err := os.MkdirTemp("", "capsd-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	store, err := runstore.Open(storeDir)
	if err != nil {
		return err
	}

	srv := telemetry.NewServer("127.0.0.1:0")
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // smoke verdict already decided
	}()
	fmt.Printf("smoke: telemetry on http://%s, store in %s\n", addr, storeDir)

	cfg := config.Default()
	cfg.MaxInsts = *insts
	var storeErrs []string
	suite := experiments.NewSuite(cfg,
		experiments.WithBenches([]string{*bench}),
		experiments.WithTelemetry(srv.Hub()),
		experiments.WithRunStore(store, func(k experiments.RunKey, err error) {
			storeErrs = append(storeErrs, fmt.Sprintf("%s: %v", k.Name(), err))
		}),
	)
	capsKey := experiments.PrefetcherKey(*bench, "caps")
	noneKey := experiments.BaselineKey(*bench)
	if _, err := suite.Run(capsKey); err != nil {
		return fmt.Errorf("smoke: caps run: %w", err)
	}
	if _, err := suite.Run(noneKey); err != nil {
		return fmt.Errorf("smoke: baseline run: %w", err)
	}
	if len(storeErrs) > 0 {
		return fmt.Errorf("smoke: store hooks failed: %s", strings.Join(storeErrs, "; "))
	}

	if err := smokeScrape(addr); err != nil {
		return err
	}
	if err := smokeEvents(addr); err != nil {
		return err
	}
	return smokeDiff(store, capsKey, noneKey)
}

// smokeScrape pulls /metrics over real HTTP and validates the exposition.
func smokeScrape(addr string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return fmt.Errorf("smoke: scrape: %w", err)
	}
	defer resp.Body.Close()
	m, err := telemetry.ParseMetrics(resp.Body)
	if err != nil {
		return fmt.Errorf("smoke: /metrics does not parse: %w", err)
	}
	done := 0.0
	for _, s := range m.Find("caps_run_done") {
		done += s.Value
	}
	if done != 2 {
		return fmt.Errorf("smoke: caps_run_done sums to %g, want 2", done)
	}
	if len(m.Find("cta_launch_total")) == 0 {
		return fmt.Errorf("smoke: /metrics is missing simulator counters")
	}
	fmt.Printf("smoke: /metrics OK (%d samples)\n", len(m.Samples))
	return nil
}

// smokeEvents reads one replayed SSE event off /events.
func smokeEvents(addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("smoke: events: %w", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if !strings.Contains(data, `"done":true`) {
				return fmt.Errorf("smoke: replayed event not done: %s", data)
			}
			fmt.Printf("smoke: /events OK (%s)\n", data)
			return nil
		}
	}
	return fmt.Errorf("smoke: /events closed without an event (scanner err: %v)", sc.Err())
}

// smokeDiff exercises the diff gate on the stored runs: a run against
// itself must be clean, and an injected IPC regression must be caught.
func smokeDiff(store *runstore.Store, capsKey, noneKey experiments.RunKey) error {
	capsEntries := store.List(runstore.Query{Bench: capsKey.Bench, Prefetcher: "caps"})
	noneEntries := store.List(runstore.Query{Bench: noneKey.Bench, Prefetcher: "none"})
	if len(capsEntries) != 1 || len(noneEntries) != 1 {
		return fmt.Errorf("smoke: store has %d caps + %d none runs, want 1 + 1",
			len(capsEntries), len(noneEntries))
	}
	capsRec, err := store.Get(capsEntries[0].ID)
	if err != nil {
		return err
	}
	if capsRec.Profile == nil {
		return fmt.Errorf("smoke: stored run has no profile")
	}
	th := profile.DefaultThresholds()
	if regs := diffRecords(capsRec, capsRec, th); len(regs) != 0 {
		return fmt.Errorf("smoke: run diffed against itself regressed: %v", regs)
	}
	// Injected regression: the same run with its IPC halved must trip the
	// gate — this is the exact comparison `capsd diff` exits 1 on.
	bad := *capsRec
	badProfile := *capsRec.Profile
	badProfile.IPC /= 2
	bad.IPC /= 2
	bad.Profile = &badProfile
	regs := diffRecords(capsRec, &bad, th)
	if len(regs) == 0 {
		return fmt.Errorf("smoke: injected 50%% IPC regression not detected")
	}
	fmt.Printf("smoke: diff gate OK (clean pair passes, injected regression caught: %s)\n", regs[0].Metric)
	return nil
}
