// Command capsd is the fleet-side companion to capsim/capsweep: it serves
// a live dashboard over the persistent run store and queries, compares and
// garbage-collects stored runs.
//
// Usage:
//
//	capsd serve  [-addr :8080] [-store .caps/runs] [-baseline BENCH_caps.json]
//	capsd ls     [-store DIR] [-bench MM] [-prefetch caps] [-all]
//	capsd show   [-store DIR] [-json] [-html out.html] <id>
//	capsd diff   [-store DIR] <base-id> <cur-id>       # exit 1 on regression
//	capsd gc     [-store DIR]
//	capsd scrape <url>                                  # fetch+validate /metrics
//	capsd events [-n 1] <url>                           # print SSE events
//	capsd smoke                                         # in-process CI gate
//
// Run IDs may be abbreviated to any unique prefix (as printed by ls).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"caps/internal/profile"
	"caps/internal/runstore"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(rest)
	case "ls":
		err = cmdLs(rest)
	case "show":
		err = cmdShow(rest)
	case "diff":
		var regressed bool
		regressed, err = cmdDiff(rest)
		if err == nil && regressed {
			return 1
		}
	case "gc":
		err = cmdGC(rest)
	case "scrape":
		err = cmdScrape(rest)
	case "events":
		err = cmdEvents(rest)
	case "smoke":
		err = cmdSmoke(rest)
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "capsd: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsd:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: capsd <command> [flags]

commands:
  serve    serve the run-store dashboard (run table, IPC charts vs baseline)
  ls       list stored runs
  show     print one stored run (-json for the full record, -html for a report)
  diff     compare two stored runs; exit 1 when the second regresses
  gc       drop superseded records from the store log
  scrape   fetch a /metrics URL and validate the Prometheus exposition
  events   subscribe to an /events URL and print SSE events
  smoke    in-process serve+store+diff smoke test (CI gate)`)
}

// storeFlag registers the shared -store flag on fs.
func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("store", runstore.DefaultDir, "run store directory")
}

func openStore(dir string) (*runstore.Store, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("no run store at %s (run capsweep/capsim with -store, or pass -store DIR)", dir)
	}
	return runstore.Open(dir)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	dir := storeFlag(fs)
	bench := fs.String("bench", "", "filter by benchmark")
	pf := fs.String("prefetch", "", "filter by prefetcher")
	all := fs.Bool("all", false, "include superseded records")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	entries := store.List(runstore.Query{Bench: *bench, Prefetcher: *pf, All: *all})
	if len(entries) == 0 {
		fmt.Println("no stored runs")
		return nil
	}
	fmt.Printf("%-16s %-5s %-8s %-5s %12s %8s %8s %8s %-12s %s\n",
		"ID", "BENCH", "PREFETCH", "SCHED", "CYCLES", "IPC", "COVER", "ACCUR", "GITREV", "CREATED")
	for _, e := range entries {
		rev := e.GitRev
		if rev == "" {
			rev = "-"
		}
		mark := ""
		if e.Aborted {
			mark = "  ABORTED"
		}
		fmt.Printf("%-16s %-5s %-8s %-5s %12d %8.4f %8.4f %8.4f %-12s %s%s\n",
			e.ID, e.Bench, e.Prefetcher, e.Scheduler, e.Cycles, e.IPC, e.Coverage, e.Accuracy,
			rev, time.Unix(e.CreatedAt, 0).UTC().Format("2006-01-02 15:04"), mark)
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	dir := storeFlag(fs)
	asJSON := fs.Bool("json", false, "print the full record as JSON")
	htmlOut := fs.String("html", "", "write the run's profile report (capsprof HTML) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: want exactly one run id, got %d", fs.NArg())
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	rec, err := store.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	fmt.Printf("run       %s\n", rec.ID)
	fmt.Printf("bench     %s  prefetch=%s  sched=%s\n", rec.Bench, rec.Prefetcher, rec.Scheduler)
	fmt.Printf("config    %s  gitrev=%s  created=%s\n", rec.ConfigHash, orDash(rec.GitRev),
		time.Unix(rec.CreatedAt, 0).UTC().Format(time.RFC3339))
	fmt.Printf("cycles    %d\ninsts     %d\nipc       %.4f\ncoverage  %.4f\naccuracy  %.4f\n",
		rec.Cycles, rec.Instructions, rec.IPC, rec.Coverage, rec.Accuracy)
	if rec.Aborted {
		fmt.Printf("aborted   %s\n", orDash(rec.AbortReason))
		if rec.FlightDump != "" {
			fmt.Printf("flight    %s  (decode with: capscope decode %s)\n", rec.FlightDump, rec.FlightDump)
		}
	}
	if rec.Profile == nil {
		fmt.Println("profile   (none)")
	} else {
		fmt.Printf("profile   %d PCs, %d CTAs, %d SM stacks\n",
			len(rec.Profile.PCs), len(rec.Profile.CTAs), len(rec.Profile.SMs))
	}
	if *htmlOut != "" {
		if rec.Profile == nil {
			return fmt.Errorf("show: run %s has no profile to render", rec.ID)
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := profile.WriteHTML(f, rec.Profile); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *htmlOut)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// cmdDiff compares two stored runs with the capsprof gate. The returned
// bool reports whether any metric regressed (the caller exits 1).
func cmdDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	dir := storeFlag(fs)
	ipcFrac := fs.Float64("ipc-frac", profile.DefaultThresholds().IPCFrac, "max tolerated fractional IPC drop")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff: want <base-id> <cur-id>, got %d args", fs.NArg())
	}
	store, err := openStore(*dir)
	if err != nil {
		return false, err
	}
	base, err := store.Get(fs.Arg(0))
	if err != nil {
		return false, err
	}
	cur, err := store.Get(fs.Arg(1))
	if err != nil {
		return false, err
	}
	th := profile.DefaultThresholds()
	th.IPCFrac = *ipcFrac
	regs := diffRecords(base, cur, th)
	fmt.Printf("base %s  %s/%s  ipc=%.4f\ncur  %s  %s/%s  ipc=%.4f\n",
		base.ID, base.Bench, base.Prefetcher, base.IPC,
		cur.ID, cur.Bench, cur.Prefetcher, cur.IPC)
	if base.Profile == nil || cur.Profile == nil {
		fmt.Println("note: one side has no stored profile; headline metrics only, stall stacks not gated")
	}
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return false, nil
	}
	fmt.Printf("%d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return true, nil
}

// diffRecords runs profile.Diff over two stored runs, synthesizing a
// headline-only profile when a record was stored without one so the gate
// still covers IPC/coverage/accuracy.
func diffRecords(base, cur *runstore.Record, th profile.Thresholds) []profile.Regression {
	return profile.Diff(profileOf(base), profileOf(cur), th)
}

func profileOf(r *runstore.Record) *profile.Profile {
	if r.Profile != nil {
		return r.Profile
	}
	return &profile.Profile{
		Meta:         profile.Meta{Bench: r.Bench, Prefetcher: r.Prefetcher, Scheduler: r.Scheduler},
		TotalCycles:  r.Cycles,
		Instructions: r.Instructions,
		IPC:          r.IPC,
		Coverage:     r.Coverage,
		Accuracy:     r.Accuracy,
	}
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	dir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	removed, err := store.GC()
	if err != nil {
		return err
	}
	fmt.Printf("dropped %d superseded record(s), %d live\n", removed, store.Len())
	return nil
}
