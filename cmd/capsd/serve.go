package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"caps/internal/experiments"
	"caps/internal/profile"
	"caps/internal/runstore"
)

// Paper-reported CAPS results (IPDPS 2018, §VI): mean IPC normalized to
// the two-level scheduler without prefetching. Drawn as reference lines on
// the speedup chart so the dashboard always shows where the fleet stands
// against the paper.
const (
	paperMeanAll       = 1.08
	paperMeanRegular   = 1.09
	paperMeanIrregular = 1.06
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	dir := storeFlag(fs)
	addr := fs.String("addr", ":8080", "listen address")
	baselinePath := fs.String("baseline", "BENCH_caps.json", "committed bench baseline (\"\" to disable)")
	speedPath := fs.String("speed", "BENCH_speed.json", "committed speed report for the host-time panel (\"\" to disable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	var baseline *profile.BenchReport
	if *baselinePath != "" {
		if _, statErr := os.Stat(*baselinePath); statErr == nil {
			b, berr := profile.ReadBaseline(*baselinePath)
			if berr != nil {
				return berr
			}
			if b.Bench == nil {
				return fmt.Errorf("serve: %s is not a bench report", *baselinePath)
			}
			baseline = b.Bench
		} else {
			fmt.Fprintf(os.Stderr, "capsd: no baseline at %s, charts show stored runs only\n", *baselinePath)
		}
	}

	var speed *experiments.SpeedReport
	if *speedPath != "" {
		if _, statErr := os.Stat(*speedPath); statErr == nil {
			speed, err = experiments.ReadSpeedReport(*speedPath)
			if err != nil {
				return err
			}
		} else {
			fmt.Fprintf(os.Stderr, "capsd: no speed report at %s, host panel shows stored profiles only\n", *speedPath)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", dashboardHandler(store, baseline, speed))
	mux.HandleFunc("/api/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, store.List(runstore.Query{All: r.URL.Query().Get("all") == "1"}))
	})
	fmt.Printf("capsd: serving run store %s on %s\n", store.Dir(), *addr)
	return http.ListenAndServe(*addr, mux)
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// dashboardHandler renders the run table and the IPC charts from the
// store's current contents on every request — the store is the source of
// truth, so a running sweep's newly stored runs appear on refresh.
func dashboardHandler(store *runstore.Store, baseline *profile.BenchReport, speed *experiments.SpeedReport) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		entries := store.List(runstore.Query{})
		var b strings.Builder
		b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>capsd — run store</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 70em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ddd; padding: 0.3em 0.6em; text-align: right; }
th { background: #f5f5f5; } td:first-child, th:first-child { text-align: left; font-family: ui-monospace, monospace; }
.chart { margin: 0.5em 0; }
</style></head><body>
<h1>capsd — run store</h1>
`)
		fmt.Fprintf(&b, "<p>%d stored run(s) in <code>%s</code></p>\n", len(entries), html.EscapeString(store.Dir()))

		writeIPCCharts(&b, entries, baseline)
		writeHostPanel(&b, store, entries, speed)
		writeMemPanel(&b, store, entries)
		writeSchedPanel(&b, store, entries)

		b.WriteString("<h2>Runs</h2>\n")
		if len(entries) == 0 {
			b.WriteString("<p>Store is empty — run capsweep or capsim with <code>-store</code>.</p>\n")
		} else {
			b.WriteString("<table><tr><th>id</th><th>bench</th><th>prefetch</th><th>sched</th><th>cycles</th><th>ipc</th><th>coverage</th><th>accuracy</th><th>gitrev</th><th>created (UTC)</th></tr>\n")
			for _, e := range entries {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>%s</td><td>%s</td></tr>\n",
					html.EscapeString(e.ID), html.EscapeString(e.Bench), html.EscapeString(e.Prefetcher),
					html.EscapeString(e.Scheduler), e.Cycles, e.IPC, e.Coverage, e.Accuracy,
					html.EscapeString(orDash(e.GitRev)),
					time.Unix(e.CreatedAt, 0).UTC().Format("2006-01-02 15:04"))
			}
			b.WriteString("</table>\n")
		}
		b.WriteString("</body></html>\n")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}

// writeIPCCharts renders the two dashboard charts: stored CAPS IPC against
// the committed baseline, and CAPS speedup over the stored no-prefetch
// runs against the paper's reported means.
func writeIPCCharts(b *strings.Builder, entries []*runstore.Entry, baseline *profile.BenchReport) {
	// Latest caps and none run per bench (entries are latest-per-identity
	// already; a bench can still appear under several schedulers — keep
	// the paper pairing: caps/pas and none baseline).
	caps := make(map[string]*runstore.Entry)
	none := make(map[string]*runstore.Entry)
	var benches []string
	for _, e := range entries {
		switch e.Prefetcher {
		case "caps":
			if _, seen := caps[e.Bench]; !seen {
				benches = append(benches, e.Bench)
			}
			caps[e.Bench] = e
		case "none":
			none[e.Bench] = e
		}
	}
	sort.Strings(benches)
	if len(benches) == 0 {
		return
	}

	b.WriteString("<h2>CAPS IPC vs committed baseline</h2>\n")
	stored := profile.ChartSeries{Name: "stored", Color: "#1976d2", Values: make([]float64, len(benches))}
	committed := profile.ChartSeries{Name: "committed baseline", Color: "#90caf9", Values: make([]float64, len(benches))}
	for i, bench := range benches {
		stored.Values[i] = caps[bench].IPC
		committed.Values[i] = math.NaN()
		if baseline != nil {
			if row, ok := baseline.Benchmarks[bench]; ok {
				committed.Values[i] = row.IPC
			}
		}
	}
	series := []profile.ChartSeries{stored}
	if baseline != nil {
		series = append(series, committed)
	}
	if err := profile.WriteBarChartSVG(b, "CAPS IPC per benchmark", benches, series, nil); err != nil {
		fmt.Fprintf(b, "<p>chart error: %s</p>\n", html.EscapeString(err.Error()))
	}

	// Speedup chart needs the stored no-prefetch runs to normalize by.
	var spLabels []string
	var spValues []float64
	for _, bench := range benches {
		base, ok := none[bench]
		if !ok || base.IPC <= 0 {
			continue
		}
		spLabels = append(spLabels, bench)
		spValues = append(spValues, caps[bench].IPC/base.IPC)
	}
	if len(spLabels) == 0 {
		b.WriteString("<p>No stored no-prefetch runs — store baseline runs to see the speedup chart.</p>\n")
		return
	}
	b.WriteString("<h2>CAPS speedup over no-prefetch two-level baseline</h2>\n")
	err := profile.WriteBarChartSVG(b, "normalized IPC (CAPS / no-prefetch)", spLabels,
		[]profile.ChartSeries{{Name: "stored speedup", Color: "#43a047", Values: spValues}},
		[]profile.RefLine{
			{Name: fmt.Sprintf("paper mean all (%.2f)", paperMeanAll), Color: "#e53935", Value: paperMeanAll},
			{Name: fmt.Sprintf("paper regular (%.2f)", paperMeanRegular), Color: "#fb8c00", Value: paperMeanRegular},
			{Name: fmt.Sprintf("paper irregular (%.2f)", paperMeanIrregular), Color: "#8e24aa", Value: paperMeanIrregular},
		})
	if err != nil {
		fmt.Fprintf(b, "<p>chart error: %s</p>\n", html.EscapeString(err.Error()))
	}
}

// writeHostPanel renders the host-time panel: per-benchmark executor
// wall-clock speedup from the committed BENCH_speed.json (serial vs tuned
// worker count), then worker utilization and per-SM tick-time imbalance of
// every stored run that carries a host profile (capsweep -hostprof-dir,
// capsim -hostprof, with -store).
func writeHostPanel(b *strings.Builder, store *runstore.Store, entries []*runstore.Entry, speed *experiments.SpeedReport) {
	if speed != nil && len(speed.Entries) > 0 {
		fmt.Fprintf(b, "<h2>Executor wall-clock speedup (serial &rarr; %d workers, idle-skip=%v)</h2>\n",
			speed.Workers, speed.IdleSkip)
		labels := make([]string, len(speed.Entries))
		vals := make([]float64, len(speed.Entries))
		for i, e := range speed.Entries {
			labels[i] = e.Bench
			vals[i] = e.Speedup
		}
		err := profile.WriteBarChartSVG(b, "wall-clock speedup (serial ms / tuned ms)", labels,
			[]profile.ChartSeries{{Name: "speedup", Color: "#00897b", Values: vals}},
			[]profile.RefLine{{Name: fmt.Sprintf("aggregate (%.2fx)", speed.Speedup), Color: "#e53935", Value: speed.Speedup}})
		if err != nil {
			fmt.Fprintf(b, "<p>chart error: %s</p>\n", html.EscapeString(err.Error()))
		}
	}

	// Imbalance histogram over stored host profiles: the bar that sticks up
	// is the run whose slowest SM holds the whole barrier back — the first
	// candidate for `capsprof host` inspection.
	var labels []string
	var imb, util []float64
	for _, e := range entries {
		rec, err := store.Get(e.ID)
		if err != nil || rec.Host == nil {
			continue
		}
		bd := rec.Host.Breakdown()
		labels = append(labels, e.Bench+"/"+e.Prefetcher)
		imb = append(imb, bd.ImbalancePct)
		mean := 0.0
		for _, u := range bd.WorkerUtil {
			mean += u
		}
		if n := len(bd.WorkerUtil); n > 0 {
			mean /= float64(n)
		}
		util = append(util, mean*100)
	}
	if len(labels) == 0 {
		if speed == nil {
			b.WriteString("<p>No host profiles stored — sweep with <code>-hostprof-dir</code> and <code>-store</code> to see the host-time panel.</p>\n")
		}
		return
	}
	b.WriteString("<h2>Host-time balance of stored runs</h2>\n")
	err := profile.WriteBarChartSVG(b, "SM tick-time imbalance and mean worker utilization (%)", labels,
		[]profile.ChartSeries{
			{Name: "SM imbalance % (max/mean - 1)", Color: "#c44e52", Values: imb},
			{Name: "mean worker utilization %", Color: "#55a868", Values: util},
		}, nil)
	if err != nil {
		fmt.Fprintf(b, "<p>chart error: %s</p>\n", html.EscapeString(err.Error()))
	}
}

// memPoint is one stored run on the memory panel's scatter.
type memPoint struct {
	bench     string
	coverage  float64 // prefetch coverage (stats headline)
	explained float64 // θ/Δ explained share of all warp addresses (memlens)
}

// writeMemPanel renders the memory panel: a per-benchmark scatter of
// prefetch coverage against θ/Δ address explainability from every stored
// CAPS run carrying a memlens profile (capsweep -memlens-dir, capsim
// -memlens, with -store). The paper's Fig. 6 argument is this plot's
// diagonal: benchmarks whose loads the affine model explains are the ones
// a CTA-aware stride prefetcher covers; points falling toward the lower
// left (BFS, PVR) are the irregular workloads where CAPS has nothing
// structured to predict.
func writeMemPanel(b *strings.Builder, store *runstore.Store, entries []*runstore.Entry) {
	var pts []memPoint
	for _, e := range entries {
		if e.Prefetcher != "caps" {
			continue
		}
		rec, err := store.Get(e.ID)
		if err != nil || rec.Mem == nil {
			continue
		}
		// ExplainedFrac covers only testable (direct) loads; scale by the
		// direct share so indirect-heavy benchmarks land where a stride
		// prefetcher actually sees them — with nothing to predict.
		as := rec.Mem.AddrStructure
		pts = append(pts, memPoint{bench: e.Bench, coverage: e.Coverage, explained: as.ExplainedFrac * (1 - as.IndirectFrac)})
	}
	if len(pts) == 0 {
		b.WriteString("<p>No memory profiles stored — sweep with <code>-memlens-dir</code> and <code>-store</code> to see the memory panel.</p>\n")
		return
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].bench < pts[j].bench })

	b.WriteString("<h2>Memory: prefetch coverage vs &theta;/&Delta; explainability</h2>\n")
	const (
		w, h           = 640, 420
		ml, mr, mt, mb = 60, 20, 30, 50 // margins: left, right, top, bottom
	)
	pw, ph := float64(w-ml-mr), float64(h-mt-mb)
	x := func(v float64) float64 { return ml + v*pw }
	y := func(v float64) float64 { return mt + (1-v)*ph }
	fmt.Fprintf(b, `<svg class="chart" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif" font-size="11">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<text x="%d" y="18" font-size="13">coverage vs address explainability per benchmark (stored caps runs)</text>`+"\n", ml)
	// Gridlines and axis labels at 0, 0.25, ... 1 on both axes.
	for i := 0; i <= 4; i++ {
		v := float64(i) / 4
		fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#eee"/>`+"\n", x(0), y(v), x(1), y(v))
		fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#eee"/>`+"\n", x(v), y(0), x(v), y(1))
		fmt.Fprintf(b, `<text x="%.0f" y="%.0f" text-anchor="end" fill="#666">%.2f</text>`+"\n", x(0)-6, y(v)+4, v)
		fmt.Fprintf(b, `<text x="%.0f" y="%.0f" text-anchor="middle" fill="#666">%.2f</text>`+"\n", x(v), y(0)+16, v)
	}
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#999"/>`+"\n", x(0), y(0), x(1), y(0))
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#999"/>`+"\n", x(0), y(0), x(0), y(1))
	fmt.Fprintf(b, `<text x="%.0f" y="%d" text-anchor="middle" fill="#333">prefetch coverage</text>`+"\n", x(0.5), h-8)
	fmt.Fprintf(b, `<text x="14" y="%.0f" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.0f)">&theta;/&Delta; explained fraction</text>`+"\n", y(0.5), y(0.5))
	for _, p := range pts {
		cov := math.Min(math.Max(p.coverage, 0), 1)
		exp := math.Min(math.Max(p.explained, 0), 1)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#1976d2" fill-opacity="0.8"><title>%s: coverage %.3f, explained %.3f</title></circle>`+"\n",
			x(cov), y(exp), html.EscapeString(p.bench), p.coverage, p.explained)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" fill="#333">%s</text>`+"\n", x(cov)+6, y(exp)+4, html.EscapeString(p.bench))
	}
	b.WriteString("</svg>\n")
}

// schedPoint is one stored run on the scheduler panel's scatter.
type schedPoint struct {
	bench   string
	eff     float64 // leading-warp effectiveness (schedlens)
	speedup float64 // caps cycles vs the stored none baseline
}

// writeSchedPanel renders the scheduler panel: a per-benchmark scatter of
// leading-warp effectiveness against the CAPS-over-none speedup from
// every stored CAPS run carrying a schedlens profile (capsweep
// -schedlens-dir, capsim -schedlens, with -store). The paper's Section
// III argument is this plot's diagonal: benchmarks whose θ/Δ bases are
// established by the designated leading warp are the ones where CAPS's
// prediction tables stay warm and the speedup materializes; a benchmark
// whose bases keep re-anchoring (BFS) sits low on both axes.
func writeSchedPanel(b *strings.Builder, store *runstore.Store, entries []*runstore.Entry) {
	noneCycles := map[string]int64{}
	for _, e := range entries {
		if e.Prefetcher == "none" && e.Cycles > 0 {
			noneCycles[e.Bench] = e.Cycles
		}
	}
	var pts []schedPoint
	maxSpeed := 1.0
	for _, e := range entries {
		if e.Prefetcher != "caps" || e.Cycles <= 0 {
			continue
		}
		rec, err := store.Get(e.ID)
		if err != nil || rec.Sched == nil {
			continue
		}
		base, ok := noneCycles[e.Bench]
		if !ok {
			continue
		}
		p := schedPoint{bench: e.Bench,
			eff:     rec.Sched.LeadingWarp.Effectiveness,
			speedup: float64(base) / float64(e.Cycles)}
		if p.speedup > maxSpeed {
			maxSpeed = p.speedup
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		b.WriteString("<p>No scheduler profiles stored — sweep with <code>-schedlens-dir</code> and <code>-store</code> (plus a <code>none</code> baseline) to see the scheduler panel.</p>\n")
		return
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].bench < pts[j].bench })
	top := math.Ceil(maxSpeed*4) / 4 // y axis snaps to the next quarter

	b.WriteString("<h2>Scheduler: leading-warp effectiveness vs CAPS speedup</h2>\n")
	const (
		w, h           = 640, 420
		ml, mr, mt, mb = 60, 20, 30, 50 // margins: left, right, top, bottom
	)
	pw, ph := float64(w-ml-mr), float64(h-mt-mb)
	x := func(v float64) float64 { return ml + v*pw }
	y := func(v float64) float64 { return mt + (1-v/top)*ph }
	fmt.Fprintf(b, `<svg class="chart" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif" font-size="11">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<text x="%d" y="18" font-size="13">leading-warp effectiveness vs speedup over none per benchmark (stored caps runs)</text>`+"\n", ml)
	for i := 0; i <= 4; i++ {
		v := float64(i) / 4
		fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#eee"/>`+"\n", x(0), y(v*top), x(1), y(v*top))
		fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#eee"/>`+"\n", x(v), y(0), x(v), y(top))
		fmt.Fprintf(b, `<text x="%.0f" y="%.0f" text-anchor="end" fill="#666">%.2f</text>`+"\n", x(0)-6, y(v*top)+4, v*top)
		fmt.Fprintf(b, `<text x="%.0f" y="%.0f" text-anchor="middle" fill="#666">%.2f</text>`+"\n", x(v), y(0)+16, v)
	}
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#999"/>`+"\n", x(0), y(0), x(1), y(0))
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#999"/>`+"\n", x(0), y(0), x(0), y(top))
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#fbb" stroke-dasharray="4 3"/>`+"\n", x(0), y(1), x(1), y(1))
	fmt.Fprintf(b, `<text x="%.0f" y="%d" text-anchor="middle" fill="#333">leading-warp effectiveness (θ/Δ bases from the designated leading warp)</text>`+"\n", x(0.5), h-8)
	fmt.Fprintf(b, `<text x="14" y="%.0f" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.0f)">cycles speedup over none</text>`+"\n", y(top/2), y(top/2))
	for _, p := range pts {
		eff := math.Min(math.Max(p.eff, 0), 1)
		sp := math.Min(math.Max(p.speedup, 0), top)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#388e3c" fill-opacity="0.8"><title>%s: effectiveness %.3f, speedup %.3f</title></circle>`+"\n",
			x(eff), y(sp), html.EscapeString(p.bench), p.eff, p.speedup)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" fill="#333">%s</text>`+"\n", x(eff)+6, y(sp)+4, html.EscapeString(p.bench))
	}
	b.WriteString("</svg>\n")
}
