package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"caps/internal/telemetry"
)

// cmdScrape fetches a /metrics URL and validates it with the strict
// exposition parser — the same check CI's serve-smoke gate runs, usable
// against any live capsim/capsweep -serve process without curl or promtool.
func cmdScrape(args []string) error {
	fs := flag.NewFlagSet("scrape", flag.ContinueOnError)
	match := fs.String("match", "", "only print series whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scrape: want exactly one URL")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: %s: %s", fs.Arg(0), resp.Status)
	}
	m, err := telemetry.ParseMetrics(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape: exposition does not parse: %w", err)
	}
	fmt.Printf("OK: %d samples, %d typed families\n", len(m.Samples), len(m.Types))
	if *match != "" {
		for _, s := range m.Samples {
			if strings.Contains(s.Name, *match) {
				fmt.Printf("%s%s %g\n", s.Name, renderLabels(s.Labels), s.Value)
			}
		}
	}
	return nil
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// cmdEvents subscribes to an /events SSE URL and prints n events.
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	n := fs.Int("n", 1, "number of events to print before exiting (0 = until the stream closes)")
	timeout := fs.Duration("timeout", 60*time.Second, "give up after this long")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("events: want exactly one URL")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("events: %s served %q, not text/event-stream", fs.Arg(0), ct)
	}
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	var kind string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Printf("%s %s\n", kind, strings.TrimPrefix(line, "data: "))
			seen++
			if *n > 0 && seen >= *n {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("events: stream: %w", err)
	}
	if *n > 0 && seen < *n {
		return fmt.Errorf("events: stream closed after %d event(s), wanted %d", seen, *n)
	}
	return nil
}
