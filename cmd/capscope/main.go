// Command capscope is the post-mortem half of the observability stack: it
// decodes flight-recorder black boxes, drives the cycle-level divergence
// localizer, and smoke-tests the whole dump pipeline.
//
// Usage:
//
//	capscope decode crash.flight.jsonl               # human-readable summary
//	capscope decode -trace out.json crash.flight.jsonl   # re-render as Chrome trace
//	capscope bisect -bench MM -perturb 40000         # localize a seeded divergence
//	capscope smoke                                   # end-to-end dump pipeline check
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"caps/internal/config"
	"caps/internal/flight"
	"caps/internal/invariant/determinism"
	"caps/internal/kernels"
	"caps/internal/obs"
	"caps/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "decode":
		return cmdDecode(os.Args[2:])
	case "bisect":
		return cmdBisect(os.Args[2:])
	case "smoke":
		return cmdSmoke(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "capscope: unknown command %q\n\n", os.Args[1])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `capscope: flight-recorder black boxes and divergence localization

  capscope decode [-trace FILE] <dump.flight.jsonl>
      summarize a flight dump; -trace re-renders its event window as a
      Chrome trace-event file (open in Perfetto / chrome://tracing)

  capscope bisect -bench B [-prefetch P] [-insts N] [-every K]
                  -perturb CYCLE [-out DIR]
      dual-run a baseline against a copy whose prefetcher is perturbed at
      CYCLE, and localize the first state divergence to an exact cycle;
      -out writes both sides' flight windows as dumps

  capscope smoke
      end-to-end pipeline check: inject a synthetic invariant violation,
      verify the dump is written, decodes, and re-renders as a valid
      Chrome trace
`)
}

// cmdDecode summarizes a dump and optionally re-renders it as a Chrome trace.
func cmdDecode(args []string) int {
	fs := flag.NewFlagSet("capscope decode", flag.ExitOnError)
	traceOut := fs.String("trace", "", "write the dump's event window as a Chrome trace-event file")
	machine := fs.Bool("machine", true, "print the per-SM machine-state snapshot")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "capscope decode: exactly one dump file required")
		return 2
	}
	d, err := flight.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope:", err)
		return 1
	}
	printSummary(d)
	if *machine && d.Header.Machine != nil {
		printMachine(d.Header.Machine)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capscope:", err)
			return 1
		}
		if err := d.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "capscope:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "capscope:", err)
			return 1
		}
		fmt.Printf("wrote %s (%d events)\n", *traceOut, len(d.Events))
	}
	return 0
}

func printSummary(d *flight.Dump) {
	h := &d.Header
	fmt.Printf("reason        %s\n", h.Reason)
	if h.Message != "" {
		fmt.Printf("message       %s\n", h.Message)
	}
	fmt.Printf("run           %s/%s/%s\n", orDash(h.Bench), orDash(h.Prefetcher), orDash(h.Scheduler))
	fmt.Printf("cycle         %d\n", h.Cycle)
	fmt.Printf("instructions  %d\n", h.Instructions)
	fmt.Printf("geometry      %d SMs, %d partitions, %d channels\n", h.SMs, h.Partitions, h.Channels)
	fmt.Printf("events        %d (overwritten %d)\n", h.Events, h.Overwritten)
	if h.SynthesizedEnds > 0 || h.OrphanEnds > 0 {
		fmt.Printf("stall repair  %d ends synthesized, %d orphan ends dropped\n", h.SynthesizedEnds, h.OrphanEnds)
	}
}

func printMachine(m *flight.MachineState) {
	fmt.Printf("machine state at cycle %d:\n", m.Cycle)
	fmt.Printf("  %-4s %5s %5s %5s %6s %5s %6s %6s %6s  %s\n",
		"SM", "WARPS", "CTAS", "LSU", "STORE", "PREF", "MSHR", "PFMSHR", "MISSQ", "SCHED READY/PENDING")
	for i := range m.SMs {
		s := &m.SMs[i]
		fmt.Printf("  %-4d %5d %5d %5d %6d %5d %6d %6d %6d  %d/%d\n",
			s.ID, s.LiveWarps, s.ActiveCTAs, s.LSUQueue, s.StoreQueue, s.PrefQueue,
			s.MSHRs, s.PrefetchMSHRs, s.MissQueue, len(s.ReadyQueue), len(s.PendingQueue))
	}
	// The deepest post-mortem question is "who is stuck on what": show the
	// warps still waiting on loads or barriers on each SM.
	for i := range m.SMs {
		s := &m.SMs[i]
		for _, w := range s.Warps {
			if !w.WaitLoad && !w.AtBarrier {
				continue
			}
			state := "wait-load"
			if w.AtBarrier {
				state = "at-barrier"
			}
			fmt.Printf("  sm %d warp %d cta %d pc %#x: %s (outstanding %d, busy-until %d)\n",
				s.ID, w.Slot, w.CTA, w.PC, state, w.Outstanding, w.BusyUntil)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// cmdBisect seeds a single-cycle prefetch perturbation into side B and asks
// the localizer for the exact first divergent cycle.
func cmdBisect(args []string) int {
	fs := flag.NewFlagSet("capscope bisect", flag.ExitOnError)
	bench := fs.String("bench", "MM", "benchmark abbreviation")
	pf := fs.String("prefetch", "caps", "prefetcher for both sides")
	insts := fs.Int64("insts", 200_000, "per-run instruction cap")
	every := fs.Int64("every", 4096, "checkpoint interval in cycles (rounded up to a power of two)")
	perturb := fs.Int64("perturb", 0, "perturb side B's first prefetch at or after this cycle (required)")
	outDir := fs.String("out", "", "write both sides' flight windows into this directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *perturb <= 0 {
		fmt.Fprintln(os.Stderr, "capscope bisect: -perturb CYCLE is required (the seeded divergence point)")
		return 2
	}

	cfg := config.Default()
	cfg.MaxInsts = *insts
	a := determinism.Side{Label: "baseline", Cfg: cfg, Opts: []sim.Option{sim.WithPrefetcher(*pf)}}
	b := determinism.Side{Label: "perturbed", Cfg: cfg, Opts: []sim.Option{sim.WithPrefetcher(*pf), sim.WithPerturbPrefetchAt(*perturb)}}

	d, err := determinism.Bisect(*bench, a, b, *every)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope:", err)
		return 1
	}
	if d == nil {
		fmt.Printf("%s: no divergence (the perturbation never fired or never changed state)\n", *bench)
		return 0
	}
	fmt.Printf("%s: first divergent cycle %d (checkpoint window ending at %d, interval %d)\n",
		d.Bench, d.Cycle, d.CheckpointCycle, d.Every)
	fmt.Printf("  state hash A %#016x\n  state hash B %#016x\n", d.HashA, d.HashB)
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "capscope:", err)
			return 1
		}
		for _, side := range []struct {
			label string
			dump  *flight.Dump
		}{{a.Label, d.WindowA}, {b.Label, d.WindowB}} {
			if side.dump == nil {
				continue
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.flight.jsonl", *bench, side.label))
			if err := side.dump.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "capscope:", err)
				return 1
			}
			fmt.Printf("  wrote %s (%d events)\n", path, len(side.dump.Events))
		}
	}
	return 0
}

// cmdSmoke exercises the whole dump pipeline in-process: a synthetic
// invariant violation must produce a dump that writes, reads back, and
// re-renders as a Chrome trace the validator accepts.
func cmdSmoke(args []string) int {
	fs := flag.NewFlagSet("capscope smoke", flag.ExitOnError)
	keep := fs.String("keep", "", "keep the smoke dump at this path instead of a temp file")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	cfg := config.Default()
	cfg.NumSMs = 4
	cfg.MaxInsts = 200_000
	k, err := kernels.ByAbbr("MM")
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke:", err)
		return 1
	}

	var dump *flight.Dump
	g, err := sim.New(cfg, k,
		sim.WithPrefetcher("caps"),
		sim.WithFlight(sim.NewFlightRecorder(cfg)),
		sim.WithOnDump(func(d *flight.Dump) { dump = d }),
		sim.WithInjectViolation(20_000),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke:", err)
		return 1
	}
	if _, err := g.Run(); err == nil {
		fmt.Fprintln(os.Stderr, "capscope smoke: injected violation did not abort the run")
		return 1
	}
	if dump == nil {
		fmt.Fprintln(os.Stderr, "capscope smoke: abort produced no flight dump")
		return 1
	}
	if dump.Header.Reason != flight.ReasonViolation {
		fmt.Fprintf(os.Stderr, "capscope smoke: dump reason %q, want %q\n", dump.Header.Reason, flight.ReasonViolation)
		return 1
	}
	if len(dump.Events) == 0 {
		fmt.Fprintln(os.Stderr, "capscope smoke: dump carries no events")
		return 1
	}

	path := *keep
	if path == "" {
		f, err := os.CreateTemp("", "capscope-smoke-*.flight.jsonl")
		if err != nil {
			fmt.Fprintln(os.Stderr, "capscope smoke:", err)
			return 1
		}
		path = f.Name()
		f.Close()
		defer os.Remove(path)
	}
	if err := dump.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke:", err)
		return 1
	}
	back, err := flight.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke: round-trip:", err)
		return 1
	}
	// Header holds a *MachineState, so compare value copies with the
	// pointer cleared; the snapshot itself is covered by the SM count.
	ha, hb := dump.Header, back.Header
	ha.Machine, hb.Machine = nil, nil
	if len(back.Events) != len(dump.Events) || ha != hb ||
		back.Header.Machine == nil || len(back.Header.Machine.SMs) != cfg.NumSMs {
		fmt.Fprintln(os.Stderr, "capscope smoke: round-trip mismatch: decoded dump differs from original")
		return 1
	}

	var buf bytes.Buffer
	if err := back.WriteChromeTrace(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke: chrome export:", err)
		return 1
	}
	sum, err := obs.ValidateChromeTrace(&buf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capscope smoke: chrome validate:", err)
		return 1
	}
	fmt.Printf("capscope smoke ok: violation at cycle %d -> dump (%d events, %d stall ends synthesized) -> decode -> chrome trace (%d events, %d/%d stall pairs)\n",
		dump.Header.Cycle, len(dump.Events), dump.Header.SynthesizedEnds, sum.Events, sum.StallBegins, sum.StallEnds)
	return 0
}
