// Command capsweep regenerates the CAPS paper's tables and figures.
//
// Usage:
//
//	capsweep -fig 10            # one figure
//	capsweep -table 3           # one table
//	capsweep -all               # everything (several minutes)
//	capsweep -fig 10 -csv       # machine-readable output
//	capsweep -fig 10 -insts 200000   # faster, lower-fidelity sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"caps/internal/config"
	"caps/internal/experiments"
	"caps/internal/hostprof"
	"caps/internal/memlens"
	"caps/internal/obs"
	"caps/internal/profile"
	"caps/internal/runstore"
	"caps/internal/schedlens"
	"caps/internal/sim"
	"caps/internal/stats"
	"caps/internal/telemetry"
)

func main() {
	var (
		fig        = flag.String("fig", "", "comma-separated figures to regenerate: 1, 4, 10, 11, 12, 13, 14a, 14b, 15")
		table      = flag.String("table", "", "table to regenerate: 1, 2, 3, 4")
		abl        = flag.String("ablation", "", "ablation to run: tables, buffer, threshold, wakeup, occupancy")
		all        = flag.Bool("all", false, "regenerate every figure and table")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		insts      = flag.Int64("insts", 0, "override the per-run instruction cap")
		par        = flag.Int("par", 0, "parallel simulations (default: GOMAXPROCS)")
		benches    = flag.String("benches", "", "comma-separated benchmark subset (default: all 16)")
		traceDir   = flag.String("trace-dir", "", "write a Chrome trace + metrics CSV per run into this directory")
		profileDir = flag.String("profile-dir", "", "write a capsprof profile JSON per run into this directory")
		benchJSON  = flag.String("bench-json", "", "run the CAPS suite and write BENCH_caps.json-style metrics to this file, then exit")
		speedJSON  = flag.String("speed-json", "", "time every benchmark serial-vs-tuned (-workers/-idle-skip), verify identical stats, write BENCH_speed.json-style timings to this file, then exit")
		serveAddr  = flag.String("serve", "", "serve live telemetry (/metrics, /events, /debug/pprof) on this address while the sweep runs")
		storeDir   = flag.String("store", "", "record every completed run (stats + profile) into this run store directory (see capsd)")
		flightDir  = flag.String("flight-dir", "", "attach a flight recorder to every run; a run that dies leaves <dir>/<run>.flight.jsonl (see capscope)")
		hprofDir   = flag.String("hostprof-dir", "", "self-profile every run's executor wall-clock and write <dir>/<run>.host.json (see capsprof host)")
		mlensDir   = flag.String("memlens-dir", "", "profile every run's memory hierarchy and write <dir>/<run>.mem.json (see capsprof mem)")
		slensDir   = flag.String("schedlens-dir", "", "profile every run's scheduler/CTA decisions and write <dir>/<run>.sched.json (see capsprof sched)")
	)
	sf := experiments.AddSimFlags(flag.CommandLine)
	flag.Parse()

	cfg := config.Default()
	if *insts > 0 {
		cfg.MaxInsts = *insts
	}
	var benchList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	if *speedJSON != "" {
		rep, err := experiments.BuildSpeedReport(cfg, benchList, sf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		if err := rep.WriteFile(*speedJSON); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks, aggregate speedup %.2fx at workers=%d idle-skip=%v)\n",
			*speedJSON, len(rep.Entries), rep.Speedup, rep.Workers, rep.IdleSkip)
		return
	}
	// -workers/-idle-skip reach every run; suite parallelism derates to
	// GOMAXPROCS/workers unless -par pins it explicitly.
	opts := sf.SuiteOptions(*par)
	if len(benchList) > 0 {
		opts = append(opts, experiments.WithBenches(benchList))
	}
	if *traceDir != "" || *profileDir != "" {
		for _, dir := range []string{*traceDir, *profileDir} {
			if dir == "" {
				continue
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "capsweep:", err)
				os.Exit(1)
			}
		}
		// Warm's workers run concurrently, so the sink→collector pairing is
		// kept in a mutex-guarded map keyed by the (unique, memoized) RunKey.
		var mu sync.Mutex
		collectors := make(map[experiments.RunKey]*profile.Collector)
		opts = append(opts, experiments.WithObs(
			func(k experiments.RunKey) *obs.Sink {
				snk := sim.NewSink(cfg, *traceDir != "", obs.DefaultTraceCap)
				if *profileDir != "" {
					col := profile.NewCollector(cfg.NumSMs)
					snk.Attach(col)
					mu.Lock()
					collectors[k] = col
					mu.Unlock()
				}
				return snk
			},
			func(k experiments.RunKey, s *obs.Sink, st *stats.Sim) {
				if *traceDir != "" {
					if err := exportRun(*traceDir, k, s); err != nil {
						fmt.Fprintln(os.Stderr, "capsweep: trace export:", err)
					}
				}
				if *profileDir != "" {
					mu.Lock()
					col := collectors[k]
					mu.Unlock()
					if err := exportProfile(*profileDir, cfg, k, col, st); err != nil {
						fmt.Fprintln(os.Stderr, "capsweep: profile export:", err)
					}
				}
			},
		))
	}
	exitCode := 0
	if *serveAddr != "" {
		srv := telemetry.NewServer(*serveAddr)
		addr, err := srv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "capsweep: telemetry on http://%s\n", addr)
		opts = append(opts, experiments.WithTelemetry(srv.Hub()))
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // exiting anyway
		}()
	}
	if *storeDir != "" {
		store, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		opts = append(opts, experiments.WithRunStore(store, func(k experiments.RunKey, err error) {
			fmt.Fprintf(os.Stderr, "capsweep: store %s: %v\n", k.Name(), err)
			exitCode = 1
		}))
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		opts = append(opts, experiments.WithFlight(*flightDir, func(k experiments.RunKey, err error) {
			fmt.Fprintf(os.Stderr, "capsweep: flight %s: %v\n", k.Name(), err)
		}))
	}
	if *hprofDir != "" {
		if err := os.MkdirAll(*hprofDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		opts = append(opts, experiments.WithHostProf(func(k experiments.RunKey, hp *hostprof.Profile) {
			if err := hp.WriteFile(filepath.Join(*hprofDir, k.Name()+".host.json")); err != nil {
				fmt.Fprintf(os.Stderr, "capsweep: hostprof %s: %v\n", k.Name(), err)
				exitCode = 1
			}
		}))
	}
	if *mlensDir != "" {
		if err := os.MkdirAll(*mlensDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		opts = append(opts, experiments.WithMemLens(func(k experiments.RunKey, mp *memlens.Profile) {
			if err := mp.WriteFile(filepath.Join(*mlensDir, k.Name()+".mem.json")); err != nil {
				fmt.Fprintf(os.Stderr, "capsweep: memlens %s: %v\n", k.Name(), err)
				exitCode = 1
			}
		}))
	}
	if *slensDir != "" {
		if err := os.MkdirAll(*slensDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		opts = append(opts, experiments.WithSchedLens(func(k experiments.RunKey, sp *schedlens.Profile) {
			if err := sp.WriteFile(filepath.Join(*slensDir, k.Name()+".sched.json")); err != nil {
				fmt.Fprintf(os.Stderr, "capsweep: schedlens %s: %v\n", k.Name(), err)
				exitCode = 1
			}
		}))
	}
	suite := experiments.NewSuite(cfg, opts...)

	// Graceful SIGINT: the first ^C asks every in-flight simulation to stop
	// at its next progress beat, so partial results flush and interrupted
	// runs land in the failure summary (non-zero exit). A second ^C kills
	// the process outright.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "capsweep: interrupt: stopping in-flight runs (press ^C again to kill)")
		suite.Interrupt()
		<-sigCh
		os.Exit(130)
	}()

	if *benchJSON != "" {
		rep, err := suite.BuildBenchReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		if err := rep.WriteFile(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "capsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *benchJSON, len(rep.Benchmarks))
		return
	}

	emit := func(title string, t *stats.Table) {
		fmt.Printf("== %s ==\n", title)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		fmt.Println()
	}
	// fail reports a driver error and marks the sweep partially failed, but
	// does not exit: remaining figures still run, and the failure summary
	// at the end carries the non-zero verdict.
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "capsweep:", err)
		exitCode = 1
	}

	figures := map[string]func(){
		"1": func() {
			t, err := experiments.Figure1(cfg, 10)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 1: inter-warp stride prefetch accuracy and cycle gap vs warp distance (MM)", t)
		},
		"4": func() {
			emit("Figure 4: load iteration characterization", experiments.Figure4())
		},
		"10": func() {
			t, err := experiments.Figure10(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 10: normalized IPC over two-level scheduler without prefetch", t)
		},
		"11": func() {
			t, err := experiments.Figure11(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 11: performance by number of concurrent CTAs", t)
		},
		"12": func() {
			cov, acc, err := experiments.Figure12(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 12a: prefetch coverage", cov)
			emit("Figure 12b: prefetch accuracy", acc)
		},
		"13": func() {
			reqs, reads, err := experiments.Figure13(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 13a: fetch requests from cores (normalized)", reqs)
			emit("Figure 13b: data read from memory (normalized)", reads)
		},
		"14a": func() {
			t, err := experiments.Figure14a(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 14a: early prefetch ratio", t)
		},
		"14b": func() {
			t, err := experiments.Figure14b(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 14b: prefetch distance of timely prefetches", t)
		},
		"15": func() {
			t, err := experiments.Figure15(suite)
			if err != nil {
				fail(err)
				return
			}
			emit("Figure 15: energy consumption by CAPS (normalized)", t)
		},
	}
	tables := map[string]func(){
		"1": func() { fmt.Printf("== Table I ==\n%s\n", experiments.TableI(cfg)) },
		"2": func() { fmt.Printf("== Table II ==\n%s\n", experiments.TableII(cfg)) },
		"3": func() { fmt.Printf("== Table III ==\n%s\n", experiments.TableIII(cfg)) },
		"4": func() { emit("Table IV: workloads", experiments.TableIV()) },
	}

	ablations := map[string]func() (*stats.Table, error){
		"tables":    func() (*stats.Table, error) { return experiments.AblationTableSize(cfg, nil) },
		"buffer":    func() (*stats.Table, error) { return experiments.AblationPrefetchBuffer(cfg, nil) },
		"threshold": func() (*stats.Table, error) { return experiments.AblationMispredictThreshold(cfg, nil) },
		"wakeup":    func() (*stats.Table, error) { return experiments.AblationWakeup(cfg) },
		"occupancy": func() (*stats.Table, error) { return experiments.AblationOccupancy(cfg) },
	}

	ran := false
	if *all {
		for _, id := range []string{"1", "2", "3", "4"} {
			tables[id]()
		}
		for _, id := range []string{"1", "4", "10", "11", "12", "13", "14a", "14b", "15"} {
			figures[id]()
		}
		ran = true
	}
	if !*all && *abl != "" {
		if f, ok := ablations[*abl]; !ok {
			fail(fmt.Errorf("unknown ablation %q", *abl))
		} else if t, err := f(); err != nil {
			fail(err)
		} else {
			emit("Ablation: "+*abl, t)
		}
		ran = true
	}
	if !*all && *fig != "" {
		for _, id := range strings.Split(*fig, ",") {
			f, ok := figures[id]
			if !ok {
				fail(fmt.Errorf("unknown figure %q", id))
				continue
			}
			f()
		}
		ran = true
	}
	if !*all && *table != "" {
		f, ok := tables[*table]
		if !ok {
			fail(fmt.Errorf("unknown table %q", *table))
		} else {
			f()
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	// Partial-failure summary: drivers keep going past a broken run, but a
	// sweep that lost any run reports what failed and exits non-zero.
	if fails := suite.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "capsweep: %d run(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %-30s %v\n", f.Key.Name(), f.Err)
		}
		exitCode = 1
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// exportRun writes <dir>/<run>.trace.json (Chrome trace-event format) and
// <dir>/<run>.metrics.csv for one completed simulation.
func exportRun(dir string, k experiments.RunKey, s *obs.Sink) error {
	name := k.Name()
	tf, err := os.Create(filepath.Join(dir, name+".trace.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(tf, s); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(dir, name+".metrics.csv"))
	if err != nil {
		return err
	}
	if err := obs.WriteCSV(mf, s.Snapshot()); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}

// exportProfile builds and writes <dir>/<run>.profile.json for one
// completed simulation.
func exportProfile(dir string, cfg config.GPUConfig, k experiments.RunKey,
	col *profile.Collector, st *stats.Sim) error {
	if col == nil {
		return fmt.Errorf("%s: no collector registered", k.Name())
	}
	meta := profile.Meta{Bench: k.Bench, Prefetcher: k.Prefetch, Scheduler: string(k.Scheduler), SMs: cfg.NumSMs}
	p, err := col.Build(meta, st)
	if err != nil {
		return err
	}
	return p.WriteFile(filepath.Join(dir, k.Name()+".profile.json"))
}
