// Command capsim runs one benchmark under one prefetcher/scheduler
// configuration and prints the collected statistics.
//
// Usage:
//
//	capsim -bench CNV -prefetch caps [-sched pas] [-ctas 8] [-insts 1000000]
//	capsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"caps/internal/config"
	"caps/internal/energy"
	"caps/internal/kernels"
	"caps/internal/prefetch"
	"caps/internal/sim"
)

func main() {
	var (
		bench   = flag.String("bench", "CNV", "benchmark abbreviation (see -list)")
		pf      = flag.String("prefetch", "none", "prefetcher: none, intra, inter, mta, nlp, lap, orch, caps")
		sched   = flag.String("sched", "", "scheduler: lrr, gto, tlv, pas (default: tlv; pas for caps)")
		ctas    = flag.Int("ctas", 0, "override max concurrent CTAs per SM")
		insts   = flag.Int64("insts", 0, "override instruction cap (0 = config default)")
		noWake  = flag.Bool("nowakeup", false, "disable PAS eager warp wake-up")
		list    = flag.Bool("list", false, "list benchmarks and prefetchers")
		showCfg = flag.Bool("config", false, "print the GPU configuration and exit")
		eEnergy = flag.Bool("energy", false, "print the energy breakdown")
	)
	flag.Parse()

	cfg := config.Default()
	if *list {
		fmt.Println("benchmarks:")
		for _, k := range kernels.All() {
			fmt.Printf("  %-4s %s (%s)\n", k.Abbr, k.Name, k.Suite)
		}
		fmt.Println("prefetchers:", prefetch.Names())
		return
	}
	if *showCfg {
		fmt.Print(cfg.TableString())
		return
	}

	if *ctas > 0 {
		cfg.MaxCTAsPerSM = *ctas
	}
	if *insts > 0 {
		cfg.MaxInsts = *insts
	}
	if *noWake {
		cfg.PrefetchWakeup = false
	}
	switch *sched {
	case "":
		if *pf == "caps" {
			cfg.Scheduler = config.SchedPAS
		}
	case "lrr", "gto", "tlv", "pas":
		cfg.Scheduler = config.SchedulerKind(*sched)
	default:
		fmt.Fprintf(os.Stderr, "capsim: unknown scheduler %q\n", *sched)
		os.Exit(2)
	}

	k, err := kernels.ByAbbr(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(2)
	}
	g, err := sim.New(cfg, k, sim.Options{Prefetcher: *pf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	st, err := g.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s  prefetch=%s  sched=%s\n", k.Abbr, *pf, cfg.Scheduler)
	fmt.Print(st.String())
	if *eEnergy {
		b := energy.Estimate(energy.DefaultParams(), cfg, st, *pf == "caps")
		fmt.Printf("energy: total=%.4f J  alu=%.4f shared=%.4f l1=%.4f l2=%.4f icnt=%.4f dram=%.4f caps=%.6f static=%.4f\n",
			b.Total(), b.ALU, b.Shared, b.L1, b.L2, b.ICNT, b.DRAM, b.CAPS, b.Static)
	}
}
