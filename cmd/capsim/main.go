// Command capsim runs one benchmark under one prefetcher/scheduler
// configuration and prints the collected statistics.
//
// Usage:
//
//	capsim -bench CNV -prefetch caps [-sched pas] [-ctas 8] [-insts 1000000]
//	capsim -bench MM -prefetch caps -trace out.json -metrics out.csv
//	capsim -bench CNV -prefetch caps -profile out.profile.json
//	capsim -bench MM -prefetch caps -cpuprofile cpu.pprof
//	capsim -bench MM -prefetch caps -workers 4 -idle-skip -hostprof out.host.json
//	capsim -bench BFS -prefetch caps -memlens out.mem.json
//	capsim -bench BFS -prefetch caps -sched pas -schedlens out.sched.json
//	capsim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"caps/internal/config"
	"caps/internal/energy"
	"caps/internal/experiments"
	"caps/internal/flight"
	"caps/internal/hostprof"
	"caps/internal/kernels"
	"caps/internal/memlens"
	"caps/internal/obs"
	"caps/internal/prefetch"
	"caps/internal/profile"
	"caps/internal/runstore"
	"caps/internal/sched"
	"caps/internal/schedlens"
	"caps/internal/sim"
	"caps/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run is main's body; keeping it a function lets deferred cleanups (pprof
// stop/flush) execute before the process exits.
func run() int {
	var (
		bench     = flag.String("bench", "CNV", "benchmark abbreviation (see -list)")
		pf        = flag.String("prefetch", "none", "prefetcher (see -list)")
		schedFlg  = flag.String("sched", "", "scheduler: "+strings.Join(sched.Names(), ", ")+" (default: tlv; pas for caps)")
		ctas      = flag.Int("ctas", 0, "override max concurrent CTAs per SM")
		insts     = flag.Int64("insts", 0, "override instruction cap (0 = config default)")
		noWake    = flag.Bool("nowakeup", false, "disable PAS eager warp wake-up")
		list      = flag.Bool("list", false, "list benchmarks, prefetchers and schedulers")
		showCfg   = flag.Bool("config", false, "print the GPU configuration and exit")
		eEnergy   = flag.Bool("energy", false, "print the energy breakdown")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON (load in Perfetto) to this file")
		metOut    = flag.String("metrics", "", "write the metrics snapshot as CSV to this file")
		profOut   = flag.String("profile", "", "write a capsprof profile JSON (stall stacks + per-PC ledger) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile of the simulator itself to this file")
		serveAdr  = flag.String("serve", "", "serve live telemetry (/metrics, /events, /debug/pprof) on this address while the run executes")
		storeDir  = flag.String("store", "", "record the completed run (stats + profile) into this run store directory (see capsd)")
		flightOut = flag.String("flight", "", "attach a flight recorder and write its black box (JSONL, see capscope) to this file when the run dies or SIGQUIT arrives")
		watchdog  = flag.Int64("watchdog", 0, "abort when no instruction retires for this many cycles (0 = default, negative = off)")
		beat      = flag.Int64("beat", 0, "progress-beat / watchdog-poll period in cycles, rounded to a power of two (0 = default 8192)")
		hprofOut  = flag.String("hostprof", "", "self-profile the executor's wall-clock (phase/worker/skip attribution) and write the host profile JSON to this file; a text report goes to stderr")
		mlensOut  = flag.String("memlens", "", "profile the memory hierarchy (θ/Δ address structure, prefetch timeliness, reuse, DRAM locality) and write the memory profile JSON to this file; a text report goes to stderr")
		slensOut  = flag.String("schedlens", "", "profile scheduler and CTA decisions (CTA timelines, pick outcomes, CAP/DIST table dynamics, leading-warp effectiveness) and write the scheduler profile JSON to this file; a text report goes to stderr")
	)
	sf := experiments.AddSimFlags(flag.CommandLine)
	flag.Parse()

	cfg := config.Default()
	if *list {
		fmt.Println("benchmarks:")
		for _, k := range kernels.All() {
			fmt.Printf("  %-4s %s (%s)\n", k.Abbr, k.Name, k.Suite)
		}
		fmt.Println("prefetchers:", prefetch.Names())
		fmt.Println("schedulers:", sched.Names())
		return 0
	}
	if *showCfg {
		fmt.Print(cfg.TableString())
		return 0
	}

	if !contains(prefetch.Names(), *pf) {
		fmt.Fprintf(os.Stderr, "capsim: unknown prefetcher %q (registered: %s)\n",
			*pf, strings.Join(prefetch.Names(), ", "))
		return 2
	}
	if *schedFlg != "" && !contains(sched.Names(), *schedFlg) {
		fmt.Fprintf(os.Stderr, "capsim: unknown scheduler %q (registered: %s)\n",
			*schedFlg, strings.Join(sched.Names(), ", "))
		return 2
	}

	o := config.Overrides{
		MaxCTAsPerSM:  *ctas,
		MaxInsts:      *insts,
		DisableWakeup: *noWake,
	}
	if *schedFlg != "" {
		o.Scheduler = config.SchedulerKind(*schedFlg)
	} else if *pf == "caps" {
		o.Scheduler = config.SchedPAS
	}
	cfg = config.Derive(cfg, o)

	k, err := kernels.ByAbbr(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsim: cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var snk *obs.Sink
	var col *profile.Collector
	if *traceOut != "" || *metOut != "" || *profOut != "" || *serveAdr != "" || *storeDir != "" {
		snk = sim.NewSink(cfg, *traceOut != "", obs.DefaultTraceCap)
	}
	if *profOut != "" || *storeDir != "" {
		col = profile.NewCollector(cfg.NumSMs)
		snk.Attach(col)
	}
	var hprof *hostprof.Profiler
	if *hprofOut != "" {
		hprof = hostprof.New(hostprof.DefaultSampleEvery)
	}
	var mlens *memlens.Collector
	if *mlensOut != "" {
		mlens = memlens.ForConfig(cfg)
	}
	var slens *schedlens.Collector
	if *slensOut != "" {
		slens = schedlens.ForConfig(cfg)
	}
	runID := fmt.Sprintf("%s-%s-%s", k.Abbr, *pf, cfg.Scheduler)
	var srv *telemetry.Server
	if *serveAdr != "" {
		srv = telemetry.NewServer(*serveAdr)
		addr, err := srv.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsim:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "capsim: telemetry on http://%s\n", addr)
		meta := telemetry.RunMeta{ID: runID, Bench: k.Abbr, Prefetcher: *pf,
			Scheduler: string(cfg.Scheduler), MaxInsts: cfg.MaxInsts}
		rp := telemetry.NewRunProgress(srv.Hub(), meta, snk.Registry())
		if hprof != nil {
			rp.AttachHostProf(hprof)
		}
		snk.Attach(rp)
	}
	opts := []sim.Option{sim.WithPrefetcher(*pf), sim.WithObs(snk),
		sim.WithProgressEvery(*beat), sim.WithWatchdogCycles(*watchdog)}
	if hprof != nil {
		opts = append(opts, sim.WithHostProf(hprof))
	}
	if mlens != nil {
		opts = append(opts, sim.WithMemLens(mlens))
	}
	if slens != nil {
		opts = append(opts, sim.WithSchedLens(slens))
	}
	opts = append(opts, sf.SimOptions()...)
	var dumpPath string
	if *flightOut != "" {
		opts = append(opts, sim.WithFlight(sim.NewFlightRecorder(cfg)),
			sim.WithOnDump(func(d *flight.Dump) {
				if err := d.WriteFile(*flightOut); err != nil {
					fmt.Fprintln(os.Stderr, "capsim: flight:", err)
					return
				}
				dumpPath = *flightOut
				fmt.Fprintf(os.Stderr, "capsim: flight dump (%s) written to %s\n", d.Header.Reason, *flightOut)
			}))
	}
	g, err := sim.New(cfg, k, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		return 1
	}

	// Graceful signals: first SIGINT asks the run to stop at the next beat
	// (partial stats flushed, store closed cleanly); a second one kills the
	// process. SIGQUIT requests a flight dump without stopping.
	sigCh := make(chan os.Signal, 4)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGQUIT)
	defer signal.Stop(sigCh)
	go func() {
		interrupted := false
		for s := range sigCh {
			switch {
			case s == syscall.SIGQUIT:
				g.RequestDump()
			case interrupted:
				os.Exit(130)
			default:
				interrupted = true
				g.RequestStop()
				fmt.Fprintln(os.Stderr, "capsim: interrupt — stopping at next beat (^C again to kill)")
			}
		}
	}()

	st, err := g.Run()
	aborted := err != nil
	abortReason := ""
	exitCode := 0
	if aborted {
		abortReason = err.Error()
		exitCode = 1
		if errors.Is(err, sim.ErrInterrupted) {
			abortReason = "interrupted"
			exitCode = 130
		}
		fmt.Fprintln(os.Stderr, "capsim:", err)
	}
	if srv != nil {
		meta := telemetry.RunMeta{ID: runID, Bench: k.Abbr, Prefetcher: *pf,
			Scheduler: string(cfg.Scheduler), MaxInsts: cfg.MaxInsts}
		if aborted {
			srv.Hub().RunAborted(meta, st.Cycles, st.Instructions, abortReason, dumpPath, snk.Snapshot())
		} else {
			srv.Hub().RunDone(meta, st.Cycles, st.Instructions, st.IPC(), snk.Snapshot())
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // exiting anyway
		}()
	}
	fmt.Printf("%s  prefetch=%s  sched=%s\n", k.Abbr, *pf, cfg.Scheduler)
	fmt.Print(st.String())
	if *eEnergy {
		b := energy.Estimate(energy.DefaultParams(), cfg, st, *pf == "caps")
		fmt.Printf("energy: total=%.4f J  alu=%.4f shared=%.4f l1=%.4f l2=%.4f icnt=%.4f dram=%.4f caps=%.6f static=%.4f\n",
			b.Total(), b.ALU, b.Shared, b.L1, b.L2, b.ICNT, b.DRAM, b.CAPS, b.Static)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, snk)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: trace:", err)
			return 1
		}
		if n := snk.Trace().Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "capsim: trace buffer full, dropped %d events (raise obs.DefaultTraceCap)\n", n)
		}
	}
	if *metOut != "" {
		if err := writeFile(*metOut, func(f *os.File) error {
			return obs.WriteCSV(f, snk.Snapshot())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: metrics:", err)
			return 1
		}
	}
	var prof *profile.Profile
	if col != nil && !aborted {
		// An aborted run's stall stacks are mid-cycle partial; the profile
		// validator would reject them, so only completed runs build one.
		meta := profile.Meta{Bench: k.Abbr, Prefetcher: *pf, Scheduler: string(cfg.Scheduler), SMs: cfg.NumSMs}
		prof, err = col.Build(meta, st)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsim: profile:", err)
			return 1
		}
	}
	if *profOut != "" {
		if err := prof.WriteFile(*profOut); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: profile:", err)
			return 1
		}
	}
	var hostProf *hostprof.Profile
	if hprof != nil {
		// g.Run's deferred Close finalized the profiler; an aborted run's
		// host profile is still written (the wall-clock spent is real), but
		// only a completed one is validated — partial runs can legitimately
		// sit outside the sampling-coverage tolerance.
		hostProf = hprof.Build(k.Abbr, *pf)
		if !aborted {
			if err := hostProf.Validate(hostprof.DefaultTolerance); err != nil {
				fmt.Fprintln(os.Stderr, "capsim: hostprof: accounting invariant violated:", err)
				return 1
			}
		}
		if err := hostProf.WriteFile(*hprofOut); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: hostprof:", err)
			return 1
		}
		if err := hostProf.WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: hostprof:", err)
			return 1
		}
	}
	var memLens *memlens.Profile
	if mlens != nil {
		// An aborted run's profile is still written (the folded events are
		// real observations), but only a completed one must reconcile —
		// partial runs legitimately have prefetches and stores in flight.
		memLens = mlens.Build(memlens.Meta{Bench: k.Abbr, Prefetcher: *pf, Cycles: st.Cycles})
		if !aborted {
			if err := memLens.Validate(st); err != nil {
				fmt.Fprintln(os.Stderr, "capsim: memlens: accounting invariant violated:", err)
				return 1
			}
		}
		if err := memLens.WriteFile(*mlensOut); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: memlens:", err)
			return 1
		}
		if err := memLens.WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: memlens:", err)
			return 1
		}
	}
	var schedLens *schedlens.Profile
	if slens != nil {
		// Same contract as memlens: an aborted run's profile is written,
		// only a completed one must reconcile.
		schedLens = slens.Build(schedlens.Meta{Bench: k.Abbr, Prefetcher: *pf,
			Scheduler: string(cfg.Scheduler), Cycles: st.Cycles})
		if !aborted {
			if err := schedLens.Validate(st); err != nil {
				fmt.Fprintln(os.Stderr, "capsim: schedlens: accounting invariant violated:", err)
				return 1
			}
		}
		if err := schedLens.WriteFile(*slensOut); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: schedlens:", err)
			return 1
		}
		if err := schedLens.WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: schedlens:", err)
			return 1
		}
	}
	if *storeDir != "" {
		store, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsim: store:", err)
			return 1
		}
		rec := runstore.NewRecord(cfg, k.Abbr, *pf, st, prof)
		if aborted {
			rec.MarkAborted(abortReason, dumpPath)
		}
		if hostProf != nil {
			rec.AttachHost(hostProf)
		}
		if memLens != nil {
			rec.AttachMem(memLens)
		}
		if schedLens != nil {
			rec.AttachSched(schedLens)
		}
		id, dup, err := store.Put(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capsim: store:", err)
			return 1
		}
		if dup {
			fmt.Printf("stored: %s (unchanged, deduplicated)\n", id)
		} else {
			fmt.Printf("stored: %s\n", id)
		}
	}
	if *memProf != "" {
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := writeFile(*memProf, func(f *os.File) error {
			return pprof.WriteHeapProfile(f)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: memprofile:", err)
			return 1
		}
	}
	return exitCode
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
