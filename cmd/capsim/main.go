// Command capsim runs one benchmark under one prefetcher/scheduler
// configuration and prints the collected statistics.
//
// Usage:
//
//	capsim -bench CNV -prefetch caps [-sched pas] [-ctas 8] [-insts 1000000]
//	capsim -bench MM -prefetch caps -trace out.json -metrics out.csv
//	capsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"caps/internal/config"
	"caps/internal/energy"
	"caps/internal/kernels"
	"caps/internal/obs"
	"caps/internal/prefetch"
	"caps/internal/sched"
	"caps/internal/sim"
)

func main() {
	var (
		bench    = flag.String("bench", "CNV", "benchmark abbreviation (see -list)")
		pf       = flag.String("prefetch", "none", "prefetcher (see -list)")
		schedFlg = flag.String("sched", "", "scheduler: "+strings.Join(sched.Names(), ", ")+" (default: tlv; pas for caps)")
		ctas     = flag.Int("ctas", 0, "override max concurrent CTAs per SM")
		insts    = flag.Int64("insts", 0, "override instruction cap (0 = config default)")
		noWake   = flag.Bool("nowakeup", false, "disable PAS eager warp wake-up")
		list     = flag.Bool("list", false, "list benchmarks, prefetchers and schedulers")
		showCfg  = flag.Bool("config", false, "print the GPU configuration and exit")
		eEnergy  = flag.Bool("energy", false, "print the energy breakdown")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON (load in Perfetto) to this file")
		metOut   = flag.String("metrics", "", "write the metrics snapshot as CSV to this file")
	)
	flag.Parse()

	cfg := config.Default()
	if *list {
		fmt.Println("benchmarks:")
		for _, k := range kernels.All() {
			fmt.Printf("  %-4s %s (%s)\n", k.Abbr, k.Name, k.Suite)
		}
		fmt.Println("prefetchers:", prefetch.Names())
		fmt.Println("schedulers:", sched.Names())
		return
	}
	if *showCfg {
		fmt.Print(cfg.TableString())
		return
	}

	if !contains(prefetch.Names(), *pf) {
		fmt.Fprintf(os.Stderr, "capsim: unknown prefetcher %q (registered: %s)\n",
			*pf, strings.Join(prefetch.Names(), ", "))
		os.Exit(2)
	}
	if *schedFlg != "" && !contains(sched.Names(), *schedFlg) {
		fmt.Fprintf(os.Stderr, "capsim: unknown scheduler %q (registered: %s)\n",
			*schedFlg, strings.Join(sched.Names(), ", "))
		os.Exit(2)
	}

	o := config.Overrides{
		MaxCTAsPerSM:  *ctas,
		MaxInsts:      *insts,
		DisableWakeup: *noWake,
	}
	if *schedFlg != "" {
		o.Scheduler = config.SchedulerKind(*schedFlg)
	} else if *pf == "caps" {
		o.Scheduler = config.SchedPAS
	}
	cfg = config.Derive(cfg, o)

	k, err := kernels.ByAbbr(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(2)
	}
	var snk *obs.Sink
	if *traceOut != "" || *metOut != "" {
		snk = sim.NewSink(cfg, *traceOut != "", obs.DefaultTraceCap)
	}
	g, err := sim.New(cfg, k, sim.Options{Prefetcher: *pf, Obs: snk})
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	st, err := g.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s  prefetch=%s  sched=%s\n", k.Abbr, *pf, cfg.Scheduler)
	fmt.Print(st.String())
	if *eEnergy {
		b := energy.Estimate(energy.DefaultParams(), cfg, st, *pf == "caps")
		fmt.Printf("energy: total=%.4f J  alu=%.4f shared=%.4f l1=%.4f l2=%.4f icnt=%.4f dram=%.4f caps=%.6f static=%.4f\n",
			b.Total(), b.ALU, b.Shared, b.L1, b.L2, b.ICNT, b.DRAM, b.CAPS, b.Static)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, snk)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: trace:", err)
			os.Exit(1)
		}
		if n := snk.Trace().Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "capsim: trace buffer full, dropped %d events (raise obs.DefaultTraceCap)\n", n)
		}
	}
	if *metOut != "" {
		if err := writeFile(*metOut, func(f *os.File) error {
			return obs.WriteCSV(f, snk.Snapshot())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "capsim: metrics:", err)
			os.Exit(1)
		}
	}
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
