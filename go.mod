module caps

go 1.22
