package caps_test

// One benchmark per paper table/figure: each regenerates the corresponding
// result through the same experiment drivers used by cmd/capsweep, at
// reduced scale (shorter instruction cap, subset of workloads for the
// multi-benchmark sweeps) so `go test -bench=.` completes in minutes on a
// single core. Run `capsweep -all` for the full-fidelity versions.

import (
	"testing"

	"caps/internal/config"
	"caps/internal/experiments"
	"caps/internal/kernels"
	"caps/internal/sim"
)

// benchConfig is the reduced-scale machine used by the benchmarks.
func benchConfig() config.GPUConfig {
	cfg := config.Default()
	cfg.MaxInsts = 15_000
	cfg.MaxCycle = 2_000_000
	return cfg
}

// benchSuite restricts the sweep to one benchmark from each behaviour
// class: bursty-regular (CNV), loop-tiled (MM), and irregular (BFS).
func benchSuite(benches ...string) *experiments.Suite {
	if len(benches) == 0 {
		benches = []string{"CNV", "MM", "BFS"}
	}
	return experiments.NewSuite(benchConfig(), experiments.WithBenches(benches))
}

func BenchmarkFigure1(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxInsts = 60_000 // needs enough warps per SM to measure distances
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure4(); len(tab.Rows) != 16 {
			b.Fatal("figure 4 incomplete")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("CNV") // 4 CTA configs × 8 schemes
		if _, err := experiments.Figure11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, _, err := experiments.Figure12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, _, err := experiments.Figure13(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure14a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure14b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure15(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableI(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableII(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableIII(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.TableIV(); len(tab.Rows) != 16 {
			b.Fatal("table IV incomplete")
		}
	}
}

// BenchmarkFlightRecorder measures the marginal cost of an always-on
// flight recorder against BenchmarkNoFlightRecorder: the same run, same
// metrics sink, with and without the black box attached. The recorder
// budget is <2% — its hot path is one ring store per event, no
// allocation, and it opts out of the per-SM-per-cycle EvCycleClass
// stream (obs.StreamFilter).
func BenchmarkFlightRecorder(b *testing.B)   { benchFlightRun(b, true) }
func BenchmarkNoFlightRecorder(b *testing.B) { benchFlightRun(b, false) }

func benchFlightRun(b *testing.B, record bool) {
	cfg := benchConfig()
	k, err := kernels.ByAbbr("CNV")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := sim.Options{Prefetcher: "caps", Obs: sim.NewSink(cfg, false, 0)}
		if record {
			opt.Flight = sim.NewFlightRecorder(cfg)
		}
		g, err := sim.New(cfg, k, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall second) — the number to watch when optimizing the
// simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := experiments.NewSuite(benchConfig())
	for i := 0; i < b.N; i++ {
		k := experiments.BaselineKey("CNV")
		k.MaxCTAs = 8 // distinct key per iteration set is unnecessary; memoization off via fresh suite
		if _, err := s.Run(k); err != nil {
			b.Fatal(err)
		}
		s = experiments.NewSuite(benchConfig())
	}
}
