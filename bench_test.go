package caps_test

// One benchmark per paper table/figure: each regenerates the corresponding
// result through the same experiment drivers used by cmd/capsweep, at
// reduced scale (shorter instruction cap, subset of workloads for the
// multi-benchmark sweeps) so `go test -bench=.` completes in minutes on a
// single core. Run `capsweep -all` for the full-fidelity versions.

import (
	"testing"

	"caps/internal/config"
	"caps/internal/experiments"
)

// benchConfig is the reduced-scale machine used by the benchmarks.
func benchConfig() config.GPUConfig {
	cfg := config.Default()
	cfg.MaxInsts = 15_000
	cfg.MaxCycle = 2_000_000
	return cfg
}

// benchSuite restricts the sweep to one benchmark from each behaviour
// class: bursty-regular (CNV), loop-tiled (MM), and irregular (BFS).
func benchSuite(benches ...string) *experiments.Suite {
	if len(benches) == 0 {
		benches = []string{"CNV", "MM", "BFS"}
	}
	return experiments.NewSuite(benchConfig(), experiments.WithBenches(benches))
}

func BenchmarkFigure1(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxInsts = 60_000 // needs enough warps per SM to measure distances
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure4(); len(tab.Rows) != 16 {
			b.Fatal("figure 4 incomplete")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("CNV") // 4 CTA configs × 8 schemes
		if _, err := experiments.Figure11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, _, err := experiments.Figure12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, _, err := experiments.Figure13(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure14a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure14b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := experiments.Figure15(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableI(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableII(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.TableIII(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.TableIV(); len(tab.Rows) != 16 {
			b.Fatal("table IV incomplete")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall second) — the number to watch when optimizing the
// simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := experiments.NewSuite(benchConfig())
	for i := 0; i < b.N; i++ {
		k := experiments.BaselineKey("CNV")
		k.MaxCTAs = 8 // distinct key per iteration set is unnecessary; memoization off via fresh suite
		if _, err := s.Run(k); err != nil {
			b.Fatal(err)
		}
		s = experiments.NewSuite(benchConfig())
	}
}
