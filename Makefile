GO ?= go

.PHONY: build lint test race race-smoke determinism trace-smoke profile-smoke serve-smoke flight-smoke hostprof-smoke memlens-smoke schedlens-smoke bench-json speed-bench results check bench

build:
	$(GO) build ./...

# -mode=all runs the per-package suite (detlint, cyclelint, statlint) plus
# the module-wide call-graph analyzers (hotlint, isolint). hotlint/isolint
# findings not covered by SIMCHECK_BASELINE fail the build — the baseline
# is a ratchet: counts may go down, never up (-update-baseline tightens it).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/simcheck -mode=all ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast race-detector pass over the packages the parallel core touches: the
# tick path and everything the isolint inventory marks as GPU-shared, plus
# one end-to-end multi-worker run so the barrier itself executes under the
# race detector. Full-module race coverage stays in `make race` / CI.
race-smoke:
	$(GO) test -race ./internal/sim ./internal/mem ./internal/sched \
		./internal/core ./internal/prefetch ./internal/obs ./internal/stats
	GOMAXPROCS=4 $(GO) run -race ./cmd/capsim -bench MM -prefetch caps \
		-insts 50000 -workers 4 -idle-skip

# Replays a benchmark subset twice with the invariant sanitizer on and
# compares state hashes (see internal/invariant/determinism).
determinism:
	$(GO) run ./cmd/simcheck -mode=determinism

# End-to-end observability smoke test: one short CAPS run with tracing and
# metrics enabled, then validate the exported Chrome trace (well-formed
# JSON, cycle-ordered tracks; see cmd/simcheck -mode=tracecheck).
trace-smoke:
	$(GO) run ./cmd/capsim -bench MM -prefetch caps -insts 50000 \
		-trace /tmp/caps-trace.json -metrics /tmp/caps-metrics.csv
	$(GO) run ./cmd/simcheck -mode=tracecheck /tmp/caps-trace.json

# End-to-end profiling smoke test: run the same benchmark twice with the
# stall-stack profiler on, then diff the two profiles — identical runs must
# produce zero regressions (also exercises the HTML report path).
profile-smoke:
	$(GO) run ./cmd/capsim -bench CNV -prefetch caps -insts 50000 \
		-profile /tmp/caps-prof-a.json
	$(GO) run ./cmd/capsim -bench CNV -prefetch caps -insts 50000 \
		-profile /tmp/caps-prof-b.json
	$(GO) run ./cmd/capsprof diff /tmp/caps-prof-a.json /tmp/caps-prof-b.json
	$(GO) run ./cmd/capsprof report /tmp/caps-prof-a.json -html /tmp/caps-prof-a.html

# End-to-end telemetry + run-store smoke test, run fully in-process by
# capsd (no curl, no fixed ports): two short runs with the telemetry server
# live, /metrics validated by the strict Prometheus parser, one SSE event
# read off /events, both runs stored, and the diff gate checked to pass a
# clean pair and catch an injected IPC regression.
serve-smoke:
	$(GO) run ./cmd/capsd smoke

# End-to-end flight-recorder smoke test, run fully in-process by capscope:
# a synthetic invariant violation must abort the run, produce a black-box
# dump, survive a JSONL round-trip, and re-render as a Chrome trace the
# validator accepts (stall pairs repaired).
flight-smoke:
	$(GO) run ./cmd/capscope smoke

# End-to-end host-profiling smoke test: one short parallel run with the
# wall-clock self-profiler on (capsim -hostprof), the written profile
# re-validated by `capsprof host -validate` (phase times must sum to the
# run's wall-clock within the sampling tolerance) and rendered to HTML,
# then host-diff'd against a second identical run. Wall-clock noise between
# two short runs is real, so the diff runs with loose thresholds — it
# gates the machinery (read, compare, context match), not the numbers.
hostprof-smoke:
	$(GO) run ./cmd/capsim -bench MM -prefetch caps -insts 50000 \
		-workers 4 -idle-skip -hostprof /tmp/caps-host-a.json
	$(GO) run ./cmd/capsim -bench MM -prefetch caps -insts 50000 \
		-workers 4 -idle-skip -hostprof /tmp/caps-host-b.json
	$(GO) run ./cmd/capsprof host /tmp/caps-host-a.json -validate
	$(GO) run ./cmd/capsprof host /tmp/caps-host-a.json \
		-html /tmp/caps-host-a.html
	$(GO) run ./cmd/capsprof host-diff /tmp/caps-host-a.json \
		/tmp/caps-host-b.json -wall 2.0 -util 0.5 -skip 0.5

# End-to-end memory-observability smoke test: one short CAPS run with the
# memory-hierarchy profiler on (capsim -memlens; the profile must reconcile
# exactly against stats.Sim or capsim exits 1), the profile rendered as
# text and HTML by `capsprof mem`, then mem-diff'd against a second run of
# the same benchmark with different executor settings — the fold is
# deterministic and executor-invariant, so the diff must be empty.
memlens-smoke:
	$(GO) run ./cmd/capsim -bench BFS -prefetch caps -insts 50000 \
		-workers 4 -idle-skip -memlens /tmp/caps-mem-a.json 2>/dev/null
	$(GO) run ./cmd/capsim -bench BFS -prefetch caps -insts 50000 \
		-memlens /tmp/caps-mem-b.json 2>/dev/null
	$(GO) run ./cmd/capsprof mem /tmp/caps-mem-a.json
	$(GO) run ./cmd/capsprof mem /tmp/caps-mem-a.json -html /tmp/caps-mem-a.html
	$(GO) run ./cmd/capsprof mem-diff /tmp/caps-mem-a.json /tmp/caps-mem-b.json

# End-to-end scheduler-observability smoke test: the same CAPS run twice
# with the scheduler/CTA profiler on (capsim -schedlens; the profile must
# reconcile exactly against stats.Sim or capsim exits 1) under different
# executor settings — parallel + idle-skip vs serial. Every schedlens
# emission fires at an executor-invariant state transition, so the two
# profiles must be byte-identical (cmp), not merely diff-clean; the text
# and HTML renderings and the sched-diff gate run on top of that.
schedlens-smoke:
	$(GO) run ./cmd/capsim -bench BFS -prefetch caps -insts 50000 \
		-workers 4 -idle-skip -schedlens /tmp/caps-sched-a.json 2>/dev/null
	$(GO) run ./cmd/capsim -bench BFS -prefetch caps -insts 50000 \
		-schedlens /tmp/caps-sched-b.json 2>/dev/null
	cmp /tmp/caps-sched-a.json /tmp/caps-sched-b.json
	$(GO) run ./cmd/capsprof sched /tmp/caps-sched-a.json
	$(GO) run ./cmd/capsprof sched /tmp/caps-sched-a.json -html /tmp/caps-sched-a.html
	$(GO) run ./cmd/capsprof sched-diff /tmp/caps-sched-a.json /tmp/caps-sched-b.json

# Regenerates BENCH_caps.json: headline IPC + prefetch metrics for every
# benchmark under the CAPS configuration. capsprof diff accepts the file as
# a baseline, turning the committed numbers into a regression gate.
bench-json:
	$(GO) run ./cmd/capsweep -insts 200000 -bench-json BENCH_caps.json

# Regenerates BENCH_speed.json: serial-vs-tuned wall-clock for every
# benchmark (the tuned side runs 8 tick workers with idle-cycle skip; both
# sides must finish with identical cycle/instruction counts or the build
# fails). `capsprof speed-diff` against the committed copy gates a >20%
# speedup regression — the comparison is on speedup ratios, so it holds
# across machines of different absolute speed.
speed-bench:
	$(GO) run ./cmd/capsweep -insts 200000 -workers 8 -idle-skip \
		-speed-json /tmp/caps-speed.json
	$(GO) run ./cmd/capsprof speed-diff BENCH_speed.json /tmp/caps-speed.json

# Regenerates results_all.txt, the checked-in sweep output EXPERIMENTS.md
# quotes. The caps match the ones documented there: Tables I–IV and
# Figures 1/4/10 at the default 1M-instruction cap, Figures 12–15 at a
# 250k cap, Figure 11 at 250k over a four-benchmark subset. Rerun after
# any change that moves simulated counters, then update the EXPERIMENTS.md
# tables that quote it. ≈45 core-minutes.
results:
	$(GO) run ./cmd/capsweep -table 1 >  results_all.txt
	$(GO) run ./cmd/capsweep -table 2 >> results_all.txt
	$(GO) run ./cmd/capsweep -table 3 >> results_all.txt
	$(GO) run ./cmd/capsweep -table 4 >> results_all.txt
	$(GO) run ./cmd/capsweep -fig 1,4,10 >> results_all.txt
	$(GO) run ./cmd/capsweep -insts 250000 -fig 12,13,14a,14b,15 >> results_all.txt
	$(GO) run ./cmd/capsweep -insts 250000 -benches CNV,MM,MRQ,BFS -fig 11 >> results_all.txt

check: build lint test race-smoke determinism trace-smoke profile-smoke serve-smoke flight-smoke hostprof-smoke memlens-smoke schedlens-smoke

bench:
	$(GO) test -bench=. -benchmem .
