GO ?= go

.PHONY: build lint test race determinism check bench

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/simcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays a benchmark subset twice with the invariant sanitizer on and
# compares state hashes (see internal/invariant/determinism).
determinism:
	$(GO) run ./cmd/simcheck -mode=determinism

check: build lint test determinism

bench:
	$(GO) test -bench=. -benchmem .
