GO ?= go

.PHONY: build lint test race determinism trace-smoke check bench

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/simcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays a benchmark subset twice with the invariant sanitizer on and
# compares state hashes (see internal/invariant/determinism).
determinism:
	$(GO) run ./cmd/simcheck -mode=determinism

# End-to-end observability smoke test: one short CAPS run with tracing and
# metrics enabled, then validate the exported Chrome trace (well-formed
# JSON, cycle-ordered tracks; see cmd/simcheck -mode=tracecheck).
trace-smoke:
	$(GO) run ./cmd/capsim -bench MM -prefetch caps -insts 50000 \
		-trace /tmp/caps-trace.json -metrics /tmp/caps-metrics.csv
	$(GO) run ./cmd/simcheck -mode=tracecheck /tmp/caps-trace.json

check: build lint test determinism trace-smoke

bench:
	$(GO) test -bench=. -benchmem .
