// Package caps is a from-scratch Go reproduction of "CTA-Aware Prefetching
// and Scheduling for GPU" (Koo, Jeon, Liu, Kim, Annavaram — IPDPS 2018).
//
// The repository contains a cycle-level GPU timing simulator modelled on
// the paper's Table III machine (an NVIDIA Fermi GTX480 as configured in
// GPGPU-Sim v3.2.2), the paper's CTA-aware prefetcher and prefetch-aware
// warp scheduler (CAPS), six prior-work prefetchers it is compared against,
// synthetic models of the sixteen evaluated benchmarks, and a harness that
// regenerates every table and figure of the evaluation.
//
// Entry points:
//
//   - cmd/capsim — run one benchmark under one prefetcher/scheduler
//   - cmd/capsweep — regenerate the paper's tables and figures
//   - examples/ — runnable walkthroughs of the public pieces
//
// The benchmarks in bench_test.go exercise the same experiment drivers at
// reduced scale so `go test -bench=.` completes quickly; use capsweep for
// full-fidelity sweeps. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package caps
